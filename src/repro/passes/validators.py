"""Device-validator passes: fail fast, with structured diagnostics.

Each validator checks a program against the resolved hardware profile
(:class:`~repro.hardware.architecture.HardwareConfig` plus the virtual
lattice size) *before* the expensive stages run, the way braket's emulator
passes gate device submission.  A violation surfaces as a
:class:`ValidationError` carrying machine-readable :class:`Diagnostic`
records — rule id, severity, message, location — instead of an attribute
crash deep inside offline mapping or online reshape.

The check dispatches on the program form via ``singledispatchmethod``
(:meth:`DeviceValidatorPass.check`): a :class:`~repro.circuits.circuit.
Circuit` is checked against the front-end rules, a
:class:`~repro.mbqc.pattern.MeasurementPattern` against the lattice-shape
rules, and a validator sees both when it runs after translate.  The JSON
shape of a failure is pinned by ``benchmarks/passes_schema.py`` and checked
in CI's pass-ecosystem smoke step.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import singledispatchmethod
from typing import Any

from repro.circuits.circuit import Circuit
from repro.errors import ReproError
from repro.hardware.architecture import LATTICE_DEGREE_3D
from repro.mbqc.pattern import MeasurementPattern
from repro.pipeline.context import PassContext
from repro.pipeline.passes import CompilerPass

#: Version stamp on every diagnostics payload; bump on shape changes so the
#: CI schema checker rejects stale captures instead of mis-parsing them.
DIAGNOSTICS_SCHEMA_VERSION = 1

SEVERITIES = ("error", "warning")

#: Below 0.25 effective fusion rate even the merged lattice cannot sustain
#: bond percolation (Section 5.2's regime floor): reject outright.  Between
#: the floor and 0.5, compilation works but RSL consumption explodes — warn.
MIN_FUSION_RATE = 0.25
WARN_FUSION_RATE = 0.5

#: A renormalization strip narrower than this cannot carve a node column
#: out of the percolated lattice (Section 5.1).
MIN_STRIP_WIDTH = 2


@dataclass(frozen=True)
class Diagnostic:
    """One validator finding, JSON-ready.

    ``rule`` is a stable ``family/check`` identifier (e.g.
    ``"connectivity/width"``); ``location`` pins the finding to a concrete
    place in the program (circuit name, node id, ...) so tooling can point
    at it without parsing the message.
    """

    rule: str
    severity: str
    message: str
    location: dict[str, Any] = field(default_factory=dict)

    def to_json_obj(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "location": dict(self.location),
        }


class ValidationError(ReproError):
    """A device validator rejected the program.

    Carries the full diagnostic list (warnings included, for context);
    :meth:`to_json` is the wire shape the CLI prints on exit 2 and the
    serve layer folds into its error frames.
    """

    def __init__(self, validator: str, diagnostics: tuple[Diagnostic, ...] | list[Diagnostic]):
        self.validator = validator
        self.diagnostics = tuple(diagnostics)
        errors = [d for d in self.diagnostics if d.severity == "error"]
        rules = ", ".join(d.rule for d in errors)
        super().__init__(
            f"validator {validator!r} rejected the program: "
            f"{len(errors)} error(s) [{rules}]"
        )

    def to_json_obj(self) -> dict[str, Any]:
        return {
            "error": "validation",
            "schema": DIAGNOSTICS_SCHEMA_VERSION,
            "validator": self.validator,
            "summary": str(self),
            "diagnostics": [d.to_json_obj() for d in self.diagnostics],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_obj(), indent=2, sort_keys=True)


class DeviceValidatorPass(CompilerPass):
    """Base validator: check program forms against the hardware profile.

    Subclasses implement :meth:`check_circuit` and/or :meth:`check_pattern`
    returning :class:`Diagnostic` lists; :meth:`run` routes the context's
    circuit (and the ``pattern`` artifact, when an earlier pass produced
    one) through the :meth:`check` single-dispatch front door, counts
    warnings into the metrics, and raises :class:`ValidationError` on any
    error-severity finding.  Validators require and provide nothing — they
    are pure gates, insertable at any slot.
    """

    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ()
    cacheable = False
    #: Where the CLI's ``--passes`` front door slots validators by default:
    #: right after translate, so pattern-shape rules see the real pattern.
    default_slot = "translate"

    def run(self, ctx: PassContext) -> None:
        diagnostics = list(self.check(ctx.circuit, ctx))
        pattern = ctx.get("pattern")
        if pattern is not None:
            diagnostics.extend(self.check(pattern, ctx))
        warnings = [d for d in diagnostics if d.severity == "warning"]
        if warnings:
            key = f"{self.name}_warnings"
            ctx.metrics[key] = ctx.metrics.get(key, 0) + len(warnings)
        if any(d.severity == "error" for d in diagnostics):
            raise ValidationError(self.name, diagnostics)

    @singledispatchmethod
    def check(self, program: Any, ctx: PassContext) -> list[Diagnostic]:
        raise ReproError(
            f"validator {self.name!r} cannot check a "
            f"{type(program).__name__}; accepted program forms: "
            "Circuit, MeasurementPattern"
        )

    @check.register
    def _(self, program: Circuit, ctx: PassContext) -> list[Diagnostic]:
        return self.check_circuit(program, ctx)

    @check.register
    def _(self, program: MeasurementPattern, ctx: PassContext) -> list[Diagnostic]:
        return self.check_pattern(program, ctx)

    # Subclass hooks; the default is "no findings", so a validator only
    # implements the forms its rules actually inspect.

    def check_circuit(self, circuit: Circuit, ctx: PassContext) -> list[Diagnostic]:
        return []

    def check_pattern(
        self, pattern: MeasurementPattern, ctx: PassContext
    ) -> list[Diagnostic]:
        return []


class ConnectivityValidatorPass(DeviceValidatorPass):
    """The program must embed in the virtual lattice's connectivity."""

    name = "validate-connectivity"

    def check_circuit(self, circuit: Circuit, ctx: PassContext) -> list[Diagnostic]:
        diagnostics = []
        capacity = ctx.virtual_size * ctx.virtual_size
        if circuit.num_qubits > capacity:
            diagnostics.append(
                Diagnostic(
                    rule="connectivity/width",
                    severity="error",
                    message=(
                        f"{circuit.num_qubits} qubits exceed the "
                        f"{ctx.virtual_size}x{ctx.virtual_size} virtual "
                        f"lattice ({capacity} columns, one per qubit)"
                    ),
                    location={
                        "kind": "circuit",
                        "name": circuit.name,
                        "qubits": circuit.num_qubits,
                    },
                )
            )
        return diagnostics

    def check_pattern(
        self, pattern: MeasurementPattern, ctx: PassContext
    ) -> list[Diagnostic]:
        diagnostics = []
        limit = ctx.config.site_degree
        for node_id in sorted(pattern.nodes):
            degree = pattern.graph.degree(node_id)
            if degree > limit:
                diagnostics.append(
                    Diagnostic(
                        rule="connectivity/degree",
                        severity="error",
                        message=(
                            f"pattern node {node_id} has degree {degree}, "
                            f"above the merged-site degree {limit}"
                        ),
                        location={
                            "kind": "pattern-node",
                            "pattern": pattern.name,
                            "node": node_id,
                            "degree": degree,
                        },
                    )
                )
        return diagnostics


class StripBudgetValidatorPass(DeviceValidatorPass):
    """Renormalization strips and the RSL budget must be viable."""

    name = "validate-strip-budget"

    def check_circuit(self, circuit: Circuit, ctx: PassContext) -> list[Diagnostic]:
        diagnostics = []
        strip = ctx.config.rsl_size // ctx.virtual_size
        if strip < MIN_STRIP_WIDTH:
            diagnostics.append(
                Diagnostic(
                    rule="strip/width",
                    severity="error",
                    message=(
                        f"RSL size {ctx.config.rsl_size} over a "
                        f"{ctx.virtual_size}x{ctx.virtual_size} virtual "
                        f"lattice leaves {strip} rows per strip; "
                        f"renormalization needs >= {MIN_STRIP_WIDTH}"
                    ),
                    location={
                        "kind": "hardware",
                        "rsl_size": ctx.config.rsl_size,
                        "virtual_size": ctx.virtual_size,
                    },
                )
            )
        elif ctx.config.rsl_size % ctx.virtual_size:
            diagnostics.append(
                Diagnostic(
                    rule="strip/alignment",
                    severity="warning",
                    message=(
                        f"RSL size {ctx.config.rsl_size} is not a multiple "
                        f"of the virtual size {ctx.virtual_size}; "
                        f"{ctx.config.rsl_size % ctx.virtual_size} lattice "
                        "rows per layer go unused"
                    ),
                    location={
                        "kind": "hardware",
                        "rsl_size": ctx.config.rsl_size,
                        "virtual_size": ctx.virtual_size,
                    },
                )
            )
        return diagnostics

    def check_pattern(
        self, pattern: MeasurementPattern, ctx: PassContext
    ) -> list[Diagnostic]:
        diagnostics = []
        capacity = ctx.virtual_size * ctx.virtual_size
        layers_needed = -(-pattern.measured_count // capacity)  # ceil
        rsls_needed = layers_needed * ctx.config.merged_rsls_per_layer
        budget = ctx.option("max_rsl", 10**6)
        if rsls_needed > budget:
            diagnostics.append(
                Diagnostic(
                    rule="strip/rsl-budget",
                    severity="error",
                    message=(
                        f"pattern needs >= {rsls_needed} RSLs "
                        f"({layers_needed} layers x "
                        f"{ctx.config.merged_rsls_per_layer} merged RSLs, "
                        "before any fusion failures) but the budget is "
                        f"{budget}"
                    ),
                    location={
                        "kind": "pattern",
                        "pattern": pattern.name,
                        "rsls_needed": rsls_needed,
                        "max_rsl": budget,
                    },
                )
            )
        return diagnostics


class RsgConstraintValidatorPass(DeviceValidatorPass):
    """The resource-state generator must sustain a 3D percolated lattice."""

    name = "validate-rsg"

    def check_circuit(self, circuit: Circuit, ctx: PassContext) -> list[Diagnostic]:
        diagnostics = []
        config = ctx.config
        if config.site_degree < LATTICE_DEGREE_3D:
            diagnostics.append(
                Diagnostic(
                    rule="rsg/degree",
                    severity="error",
                    message=(
                        f"merged site degree {config.site_degree} cannot "
                        f"reach the 3D lattice degree {LATTICE_DEGREE_3D} "
                        f"even after merging "
                        f"{config.merged_rsls_per_layer} RSLs"
                    ),
                    location={
                        "kind": "hardware",
                        "site_degree": config.site_degree,
                        "merged_rsls": config.merged_rsls_per_layer,
                    },
                )
            )
        rate = config.effective_fusion_rate
        if rate < MIN_FUSION_RATE:
            diagnostics.append(
                Diagnostic(
                    rule="rsg/fusion-rate",
                    severity="error",
                    message=(
                        f"effective fusion rate {rate:.3f} (success "
                        f"{config.fusion_success_rate} x photon survival) "
                        f"is below the percolation floor {MIN_FUSION_RATE}"
                    ),
                    location={
                        "kind": "hardware",
                        "effective_fusion_rate": round(rate, 6),
                        "photon_loss_rate": config.photon_loss_rate,
                    },
                )
            )
        elif rate < WARN_FUSION_RATE:
            diagnostics.append(
                Diagnostic(
                    rule="rsg/fusion-rate",
                    severity="warning",
                    message=(
                        f"effective fusion rate {rate:.3f} is below "
                        f"{WARN_FUSION_RATE}; expect heavy RSL consumption"
                    ),
                    location={
                        "kind": "hardware",
                        "effective_fusion_rate": round(rate, 6),
                        "photon_loss_rate": config.photon_loss_rate,
                    },
                )
            )
        if config.redundant_degree == 0:
            diagnostics.append(
                Diagnostic(
                    rule="rsg/redundancy",
                    severity="warning",
                    message=(
                        "no redundant leaves after the six 3D bonds: "
                        "every fusion failure costs a lattice bond outright"
                    ),
                    location={
                        "kind": "hardware",
                        "site_degree": config.site_degree,
                    },
                )
            )
        return diagnostics
