"""The pass ecosystem: optimization + device validation for the pipeline slot.

The slot between translate and offline-map (insertable since the pipeline
refactor, via :meth:`~repro.pipeline.pipeline.Pipeline.insert_pass`) hosts
two pass families, modeled on the braket emulator-pass shape:

* :class:`~repro.passes.rewrite.RewritePass` — zero-angle pair contraction
  that shrinks the MBQC pattern before mapping (``--rewrite on|off``, the
  unrewritten chain kept as a byte-identity oracle);
* device validators (:mod:`repro.passes.validators`) — fail-fast gates
  checking the program against the hardware profile, with structured JSON
  diagnostics.

:data:`PASS_REGISTRY` names the insertable passes for the CLI's
``--passes`` flag; :func:`get_pass` resolves a name or raises
:class:`UnknownPassError` listing the registry (the same contract as the
experiment registry).  :func:`~repro.passes.frontdoor.make_pass_list` is
the ``singledispatch`` front door accepting Circuit, MBQC pattern, or
serialized IR.
"""

from repro.errors import ReproError
from repro.passes.frontdoor import (
    CIRCUIT_IR_FORMAT,
    PatternSourcePass,
    circuit_from_ir,
    circuit_to_ir,
    compile_program,
    make_pass_list,
    pattern_fingerprint,
    program_circuit,
)
from repro.passes.rewrite import REWRITES, RewritePass
from repro.passes.validators import (
    DIAGNOSTICS_SCHEMA_VERSION,
    SEVERITIES,
    ConnectivityValidatorPass,
    DeviceValidatorPass,
    Diagnostic,
    RsgConstraintValidatorPass,
    StripBudgetValidatorPass,
    ValidationError,
)


class UnknownPassError(ReproError):
    """An unregistered pass name reached the front door."""


#: Insertable-by-name passes (the ``--passes`` vocabulary).  Values are
#: classes: every CLI use gets a fresh instance, so pass objects are never
#: shared between pipelines.
PASS_REGISTRY: dict[str, type] = {
    RewritePass.name: RewritePass,
    ConnectivityValidatorPass.name: ConnectivityValidatorPass,
    StripBudgetValidatorPass.name: StripBudgetValidatorPass,
    RsgConstraintValidatorPass.name: RsgConstraintValidatorPass,
}


def pass_names() -> list[str]:
    """Registered pass names, in registration order."""
    return list(PASS_REGISTRY)


def get_pass(name: str) -> type:
    """Resolve a registered pass class; unknown names list the registry."""
    try:
        return PASS_REGISTRY[name]
    except KeyError:
        known = ", ".join(PASS_REGISTRY) or "<none>"
        raise UnknownPassError(
            f"unknown pass {name!r}; registered passes: {known}"
        ) from None


__all__ = [
    "CIRCUIT_IR_FORMAT",
    "DIAGNOSTICS_SCHEMA_VERSION",
    "ConnectivityValidatorPass",
    "DeviceValidatorPass",
    "Diagnostic",
    "PASS_REGISTRY",
    "PatternSourcePass",
    "REWRITES",
    "RewritePass",
    "RsgConstraintValidatorPass",
    "SEVERITIES",
    "StripBudgetValidatorPass",
    "UnknownPassError",
    "ValidationError",
    "circuit_from_ir",
    "circuit_to_ir",
    "compile_program",
    "get_pass",
    "make_pass_list",
    "pass_names",
    "pattern_fingerprint",
    "program_circuit",
]
