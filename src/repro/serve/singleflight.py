"""Single-flight coalescing: one in-flight compile, many subscribers.

Concurrent requests that normalize to the same key (circuit fingerprint +
config for compiles, normalized request for experiments) must not compile
twice: the first request starts a *producer*; every later request joins
the same :class:`InflightStream` and replays its buffer from the start, so
a subscriber that arrives mid-stream still receives the complete frame
sequence — never a partial tail.  When the producer finishes, the key is
retired: the *next* request for it starts a fresh compile (which then hits
the warm artifact cache instead of recomputing).

The stream is thread/async bilingual by design: producers are plain
threads (the server's worker pool), subscribers are either blocking
iterators (tests, the in-process client path) waiting on a
``threading.Condition`` or asyncio generators (the server's connection
handlers) woken through ``loop.call_soon_threadsafe`` — no polling on
either side.

Items are opaque to this module; the server publishes *encoded frame
bytes*, which is what makes "every subscriber of one key receives
identical bytes" true by construction rather than by re-serialization.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, AsyncIterator, Callable, Iterator


class InflightStream:
    """An append-only broadcast buffer with full-replay subscription.

    One producer appends via :meth:`publish` and closes via :meth:`finish`;
    any number of subscribers iterate the buffer from index zero.  The
    buffer is never truncated while the stream object is alive, so a
    subscriber joining at any point observes the identical item sequence.
    """

    def __init__(self, key: str) -> None:
        self.key = key
        self._cond = threading.Condition()
        self._items: list[Any] = []
        self._done = False
        self._error: BaseException | None = None
        # Async subscribers park one (loop, event) pair per wait; a publish
        # or finish drains the list and wakes each on its own loop.
        self._wakers: list[tuple[asyncio.AbstractEventLoop, asyncio.Event]] = []

    # -- producer side -------------------------------------------------------

    def publish(self, item: Any) -> None:
        """Append one item and wake every waiting subscriber."""
        with self._cond:
            if self._done:
                raise RuntimeError(f"stream {self.key!r} is already finished")
            self._items.append(item)
            self._cond.notify_all()
            wakers, self._wakers = self._wakers, []
        self._wake(wakers)

    def finish(self, error: BaseException | None = None) -> None:
        """Close the stream; ``error`` (if any) re-raises in subscribers.

        Idempotent: the producer's ``finally`` and an exceptional path may
        both land here.
        """
        with self._cond:
            if self._done:
                return
            self._done = True
            self._error = error
            self._cond.notify_all()
            wakers, self._wakers = self._wakers, []
        self._wake(wakers)

    @staticmethod
    def _wake(wakers: list[tuple[asyncio.AbstractEventLoop, asyncio.Event]]) -> None:
        for loop, event in wakers:
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:
                pass  # the subscriber's loop already shut down

    # -- subscriber side -----------------------------------------------------

    @property
    def done(self) -> bool:
        with self._cond:
            return self._done

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    def subscribe(self, timeout: float | None = None) -> Iterator[Any]:
        """Blocking full-replay iteration: items 0..n, then StopIteration
        (or the producer's error).  ``timeout`` bounds each *wait*, not the
        whole iteration; expiry raises ``TimeoutError``."""
        cursor = 0
        while True:
            with self._cond:
                if not self._cond.wait_for(
                    lambda: len(self._items) > cursor or self._done, timeout
                ):
                    raise TimeoutError(
                        f"stream {self.key!r}: no item within {timeout}s"
                    )
                chunk = self._items[cursor:]
                done, error = self._done, self._error
            cursor += len(chunk)
            yield from chunk
            if done and not chunk:
                if error is not None:
                    raise error
                return

    async def asubscribe(self) -> AsyncIterator[Any]:
        """Async full-replay iteration (the server's subscriber path)."""
        cursor = 0
        while True:
            with self._cond:
                chunk = self._items[cursor:]
                done, error = self._done, self._error
                if not chunk and not done:
                    event = asyncio.Event()
                    self._wakers.append((asyncio.get_running_loop(), event))
            if chunk:
                cursor += len(chunk)
                for item in chunk:
                    yield item
                continue
            if done:
                if error is not None:
                    raise error
                return
            await event.wait()


class SingleFlight:
    """Keyed coalescing of in-flight work.

    :meth:`join` either starts a producer for ``key`` (this caller is the
    *leader*) or returns the already-running stream (this caller
    *coalesced*).  The leader's ``start`` callback receives the fresh
    stream and must arrange for exactly one producer to eventually call
    :meth:`finish` — typically by submitting to a worker pool.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[str, InflightStream] = {}
        self.started = 0
        self.coalesced = 0

    def join(
        self, key: str, start: Callable[[InflightStream], Any]
    ) -> tuple[InflightStream, bool]:
        """The stream for ``key`` plus whether this caller is the leader."""
        with self._lock:
            stream = self._inflight.get(key)
            if stream is not None:
                self.coalesced += 1
                return stream, False
            stream = InflightStream(key)
            self._inflight[key] = stream
            self.started += 1
        try:
            start(stream)
        except BaseException as exc:
            # The producer never launched: retire the key and fail every
            # subscriber (there is exactly one — this caller) rather than
            # leaving an immortal in-flight entry that coalesces forever.
            self.finish(key, stream, error=exc)
            raise
        return stream, True

    def retire(self, key: str, stream: InflightStream) -> None:
        """Remove ``key`` from the in-flight map *without* closing the stream.

        Producers call this immediately before publishing their terminal
        frame: by the time any subscriber can observe that frame (and issue
        a follow-up request), the key is already retired — so a repeat
        request races into a fresh flight that hits the warm cache, never a
        full replay of a response produced before it was submitted.
        """
        with self._lock:
            if self._inflight.get(key) is stream:
                del self._inflight[key]

    def finish(
        self,
        key: str,
        stream: InflightStream,
        error: BaseException | None = None,
    ) -> None:
        """Close ``stream`` and retire ``key`` (producers call this from a
        ``finally``).  Late subscribers holding the stream object still
        replay its full buffer; new requests for the key start fresh."""
        stream.finish(error)
        with self._lock:
            if self._inflight.get(key) is stream:
                del self._inflight[key]

    def stats(self) -> dict[str, int]:
        """Lifetime counters plus the current in-flight key count."""
        with self._lock:
            return {
                "started": self.started,
                "coalesced": self.coalesced,
                "inflight": len(self._inflight),
            }
