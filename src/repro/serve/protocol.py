"""The service wire protocol: versioned JSONL frames over a byte stream.

One request is one JSON object on one line; one response is a *stream* of
JSON frames, one per line, terminated by exactly one terminal frame.  The
same frame vocabulary travels over TCP and over a Unix socket — the
transport never changes the bytes, which is what makes the golden
byte-identity contract (records streamed through the server are identical
to a local :meth:`~repro.experiments.api.Experiment.run`) testable at the
protocol layer.

Frame kinds (server -> client):

* ``hello`` — once per connection, immediately after accept: protocol
  version handshake.  A client that sees a different ``v`` must disconnect.
* ``ack`` — once per request: the request's single-flight ``key`` and
  whether this subscriber ``coalesced`` onto an already-running compile.
  Per-connection, *not* part of the shared stream — everything after it is
  byte-identical for every subscriber of the same key.
* ``record`` — one per :class:`~repro.experiments.api.ExperimentRecord`
  (experiment requests), carrying exactly the JSONL-writer payload:
  ``record.canonical()`` plus ``timings`` and ``metrics``.
* ``pass`` — one per pass completion (compile/baseline requests), as the
  pipeline stage finishes.
* ``result`` — the final compile/baseline outcome (compile requests).
* ``summary`` — the terminal success frame: record/pass counts, elapsed
  seconds, record-derived cache counts, the server cache's session stats,
  and a metrics snapshot.  Shared by every subscriber of the stream.
* ``error`` — the terminal failure frame (also used for per-connection
  protocol errors and request timeouts).
* ``stats`` — the terminal frame of a ``stats`` request: the live server
  introspection payload.

Requests name an ``op`` (``experiment``, ``compile``, ``baseline``,
``stats``); :func:`validate_request` normalizes one against the schema —
defaults filled in, types checked, unknown keys rejected — so the server
executes only fully-specified requests and two textually different
requests for the same work normalize to the same single-flight key.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ReproError
from repro.experiments.api import ExperimentRecord

#: Bump on any frame- or request-schema change: a mismatched client must
#: fail the hello handshake, never misparse a stream.  v2: experiment and
#: compile requests grew the ``rewrite`` field (pattern-rewrite pass gate).
PROTOCOL_VERSION = 2

#: Upper bound on one frame line (requests are small; record frames are
#: bounded by record size).  The server passes this as the asyncio stream
#: limit so a garbage client cannot buffer unbounded input.
MAX_FRAME_BYTES = 1 << 20

FRAME_KINDS = (
    "hello",
    "ack",
    "record",
    "pass",
    "result",
    "summary",
    "error",
    "stats",
)

#: Frames that end a request's stream (the client stops reading after one).
TERMINAL_FRAMES = ("summary", "error", "stats")

OPS = ("experiment", "compile", "baseline", "stats")


class ProtocolError(ReproError):
    """Malformed request or frame (bad JSON, unknown op, wrong types)."""


# ---------------------------------------------------------------------------
# Frame (de)serialization
# ---------------------------------------------------------------------------


def encode_frame(frame: dict[str, Any]) -> bytes:
    """One frame as its canonical wire bytes (sorted keys, one line).

    Sorted keys and tight separators make the encoding a *function* of the
    frame content — the byte-identity tests compare these lines directly.
    """
    return (json.dumps(frame, sort_keys=True, separators=(",", ":")) + "\n").encode()


def decode_frame(line: bytes | str) -> dict[str, Any]:
    """Parse one wire line into a frame dict, validating the ``frame`` tag."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"unparsable frame: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(f"frame is not a JSON object: {obj!r}")
    kind = obj.get("frame")
    if kind not in FRAME_KINDS:
        raise ProtocolError(
            f"unknown frame kind {kind!r}; expected one of: {', '.join(FRAME_KINDS)}"
        )
    return obj


# ---------------------------------------------------------------------------
# Frame constructors (the one definition of each frame's shape)
# ---------------------------------------------------------------------------


def hello_frame() -> dict[str, Any]:
    return {"frame": "hello", "v": PROTOCOL_VERSION, "server": "repro-serve"}


def ack_frame(
    request_id: str | None, op: str, key: str, coalesced: bool
) -> dict[str, Any]:
    return {
        "frame": "ack",
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "op": op,
        "key": key,
        "coalesced": coalesced,
    }


def record_frame(seq: int, record: ExperimentRecord) -> dict[str, Any]:
    """One record as a frame — exactly the ``JsonlStreamWriter`` payload,
    so a streamed file of these reconciles with ``--stream --out`` output."""
    return {
        "frame": "record",
        "seq": seq,
        "record": {
            **record.canonical(),
            "timings": dict(record.timings),
            "metrics": dict(record.metrics),
        },
    }


def pass_frame(name: str, seconds: float) -> dict[str, Any]:
    return {"frame": "pass", "pass": name, "seconds": seconds}


def result_frame(op: str, payload: dict[str, Any]) -> dict[str, Any]:
    return {"frame": "result", "op": op, "result": payload}


def summary_frame(
    op: str,
    *,
    records: int,
    elapsed_s: float,
    cache: dict[str, Any],
    cache_session: dict[str, Any] | None = None,
    metrics: dict[str, Any] | None = None,
) -> dict[str, Any]:
    return {
        "frame": "summary",
        "v": PROTOCOL_VERSION,
        "op": op,
        "records": records,
        "elapsed_s": elapsed_s,
        "cache": cache,
        "cache_session": cache_session,
        "metrics": metrics,
    }


def error_frame(
    message: str, kind: str = "error", details: dict[str, Any] | None = None
) -> dict[str, Any]:
    """A terminal error frame; ``details`` carries structured payloads
    (e.g. a device validator's JSON diagnostics) without changing the
    frame's required shape."""
    frame = {"frame": "error", "v": PROTOCOL_VERSION, "error": message, "kind": kind}
    if details is not None:
        frame["details"] = details
    return frame


def stats_frame(payload: dict[str, Any]) -> dict[str, Any]:
    return {"frame": "stats", "v": PROTOCOL_VERSION, "stats": payload}


def record_from_payload(payload: dict[str, Any]) -> ExperimentRecord:
    """Reconstruct an :class:`ExperimentRecord` from a record frame payload.

    The inverse of :func:`record_frame`: a client folds these into
    :meth:`~repro.experiments.api.ExperimentResult.from_stream` and gets a
    result whose canonical JSON is byte-identical to the local run's.
    """
    try:
        return ExperimentRecord(
            experiment=payload["experiment"],
            scale=payload["scale"],
            seed=payload["seed"],
            job=payload["job"],
            fields=dict(payload["fields"]),
            timings=dict(payload.get("timings", {})),
            metrics=dict(payload.get("metrics", {})),
        )
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed record payload: {exc}") from None


# ---------------------------------------------------------------------------
# Request validation
# ---------------------------------------------------------------------------

_NoneType = type(None)

#: op -> (required ``field: types``, optional ``field: (types, default)``).
#: Floats admit ints (JSON has one number type); bools are never numbers.
_REQUEST_SPEC: dict[str, tuple[dict, dict]] = {
    "experiment": (
        {"name": (str,)},
        {
            "scale": ((str,), "bench"),
            "seed": ((int,), 0),
            "runner": ((str,), "serial"),
            "workers": ((int, _NoneType), None),
            "shards": ((int, _NoneType), None),
            "pathfind": ((str, _NoneType), None),
            "rewrite": ((str, _NoneType), None),
        },
    ),
    "compile": (
        {"benchmark": (str,), "qubits": (int,)},
        {
            "rate": ((int, float), 0.75),
            "stars": ((int,), 4),
            "seed": ((int,), 0),
            "rsl_size": ((int, _NoneType), None),
            "virtual_size": ((int, _NoneType), None),
            "max_rsl": ((int,), 10**6),
            "pathfind": ((str,), "vector"),
            "rewrite": ((str,), "on"),
            "passes": ((str, _NoneType), None),
        },
    ),
    "stats": ({}, {}),
}
_REQUEST_SPEC["baseline"] = _REQUEST_SPEC["compile"]

#: Fields every request may carry regardless of op.
_COMMON_OPTIONAL: dict[str, tuple[tuple, Any]] = {
    "id": ((str, _NoneType), None),
    "v": ((int,), PROTOCOL_VERSION),
}


def _check_type(op: str, field: str, value: Any, types: tuple) -> None:
    if isinstance(value, bool) and bool not in types:
        raise ProtocolError(f"{op}: field {field!r} is a bool, expected number")
    if not isinstance(value, types):
        names = "/".join(t.__name__ for t in types)
        raise ProtocolError(
            f"{op}: field {field!r} is {type(value).__name__}, expected {names}"
        )


def validate_request(obj: Any) -> dict[str, Any]:
    """Normalize one request against the schema; raises :class:`ProtocolError`.

    Returns a *new* dict with every optional field present (defaults filled
    in), which is what makes the single-flight key a pure function of the
    normalized request: two clients omitting vs. spelling out a default
    coalesce onto the same in-flight compile.
    """
    if not isinstance(obj, dict):
        raise ProtocolError(f"request is not a JSON object: {obj!r}")
    op = obj.get("op")
    if op not in _REQUEST_SPEC:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of: {', '.join(OPS)}"
        )
    required, optional = _REQUEST_SPEC[op]
    request: dict[str, Any] = {"op": op}
    known = {"op", *required, *optional, *_COMMON_OPTIONAL}
    unknown = sorted(set(obj) - known)
    if unknown:
        raise ProtocolError(f"{op}: unknown fields {unknown}")
    for field, types in required.items():
        if field not in obj:
            raise ProtocolError(f"{op}: missing required field {field!r}")
        _check_type(op, field, obj[field], types)
        request[field] = obj[field]
    for field, (types, default) in {**optional, **_COMMON_OPTIONAL}.items():
        value = obj.get(field, default)
        _check_type(op, field, value, types)
        request[field] = value
    if request["v"] != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {request['v']} != server's {PROTOCOL_VERSION}"
        )
    return request
