"""The blocking client: one socket, one request, one streamed response.

:class:`ServeClient` is what the CLI's ``repro submit`` and the test/bench
suites use — a deliberately boring synchronous client (plain sockets, no
asyncio) so embedding it costs nothing and its failure modes are the
transport's own.  One :meth:`submit` call opens a connection, performs the
hello handshake, sends the request line, and consumes frames until the
terminal frame, returning a :class:`StreamedRun` holding everything that
crossed the wire: the raw frame bytes (the golden byte-identity tests
compare these), the parsed frames, and typed views (records, pass events,
the result/summary/error payloads).

A streamed experiment reconstructs the *exact* local result:
:meth:`StreamedRun.experiment_result` folds the records plus the summary
frame's ``cache_session``/``metrics`` through
:meth:`~repro.experiments.api.ExperimentResult.from_stream`, so a remote
run renders the same tables and reports the same cache accounting as a
local :meth:`~repro.experiments.api.Experiment.run`.
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ReproError
from repro.experiments.api import (
    ExperimentRecord,
    ExperimentResult,
    get_experiment,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    TERMINAL_FRAMES,
    ProtocolError,
    decode_frame,
    record_from_payload,
    validate_request,
)


class ServerError(ReproError):
    """The server answered with an ``error`` frame; carries its ``kind``."""

    def __init__(self, message: str, kind: str = "error") -> None:
        super().__init__(message)
        self.kind = kind


@dataclass
class StreamedRun:
    """Everything one request streamed back, raw and parsed.

    ``raw`` holds the response's wire bytes *after* the per-connection
    ``hello``/``ack`` preamble — exactly the shared single-flight stream,
    so two coalesced clients' ``raw`` compare equal byte-for-byte.
    """

    request: dict[str, Any]
    ack: dict[str, Any] | None = None
    frames: list[dict[str, Any]] = field(default_factory=list)
    raw: list[bytes] = field(default_factory=list)
    records: list[ExperimentRecord] = field(default_factory=list)
    passes: list[dict[str, Any]] = field(default_factory=list)
    result: dict[str, Any] | None = None
    summary: dict[str, Any] | None = None
    error: dict[str, Any] | None = None
    stats: dict[str, Any] | None = None

    @property
    def coalesced(self) -> bool:
        return bool(self.ack and self.ack.get("coalesced"))

    def raise_for_error(self) -> "StreamedRun":
        """Raise :class:`ServerError` if the stream ended in an error frame."""
        if self.error is not None:
            raise ServerError(
                self.error.get("error", "server error"),
                kind=self.error.get("kind", "error"),
            )
        return self

    def experiment_result(self) -> ExperimentResult:
        """The streamed records folded into a full local-equivalent result."""
        self.raise_for_error()
        if self.request["op"] != "experiment":
            raise ReproError(
                f"experiment_result() needs an experiment run, "
                f"got op {self.request['op']!r}"
            )
        return ExperimentResult.from_stream(
            get_experiment(self.request["name"]),
            self.records,
            runner=self.request["runner"],
            summary=self.summary,
        )


class ServeClient:
    """A blocking JSONL-protocol client over TCP or a Unix socket."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int | None = None,
        unix_path: str | None = None,
        timeout: float | None = None,
    ) -> None:
        if port is None and unix_path is None:
            raise ReproError("ServeClient needs a port or a unix socket path")
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.timeout = timeout

    def _connect(self) -> socket.socket:
        if self.unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.unix_path)
            return sock
        return socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )

    def wait_until_up(self, timeout: float = 10.0) -> None:
        """Poll-connect until the server accepts (or ``timeout`` expires).

        The handshake races server startup in tests and the CI smoke step;
        a successful connect *and* hello means the listener is live.
        """
        deadline = time.monotonic() + timeout
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                with self._connect() as sock:
                    self._handshake(sock.makefile("rb"))
                return
            except (OSError, ProtocolError) as exc:
                last = exc
                time.sleep(0.05)
        raise ReproError(f"server did not come up within {timeout}s: {last}")

    @staticmethod
    def _handshake(reader) -> None:
        line = reader.readline()
        if not line:
            raise ProtocolError("connection closed before hello")
        hello = decode_frame(line)
        if hello.get("frame") != "hello":
            raise ProtocolError(f"expected hello frame, got {hello!r}")
        if hello.get("v") != PROTOCOL_VERSION:
            raise ProtocolError(
                f"server speaks protocol v{hello.get('v')}, "
                f"client v{PROTOCOL_VERSION}"
            )

    def submit(
        self,
        request: dict[str, Any],
        on_frame: Callable[[dict[str, Any]], None] | None = None,
    ) -> StreamedRun:
        """Send one request; consume its stream to the terminal frame.

        ``on_frame`` observes each post-ack frame as it arrives (the CLI
        streams records to stdout through it); the returned
        :class:`StreamedRun` additionally accumulates everything.
        Client-side validation runs first so a malformed request fails
        before touching the network, with the same error the server would
        give.
        """
        request = validate_request(request)
        run = StreamedRun(request=request)
        with self._connect() as sock:
            reader = sock.makefile("rb")
            self._handshake(reader)
            sock.sendall(
                (json.dumps(request, sort_keys=True) + "\n").encode()
            )
            while True:
                line = reader.readline()
                if not line:
                    raise ServerError(
                        "connection closed mid-stream (no terminal frame)",
                        kind="disconnect",
                    )
                frame = decode_frame(line)
                kind = frame["frame"]
                if kind == "ack":
                    run.ack = frame
                    continue
                run.raw.append(line)
                run.frames.append(frame)
                if kind == "record":
                    run.records.append(record_from_payload(frame["record"]))
                elif kind == "pass":
                    run.passes.append(frame)
                elif kind == "result":
                    run.result = frame["result"]
                elif kind == "summary":
                    run.summary = frame
                elif kind == "error":
                    run.error = frame
                elif kind == "stats":
                    run.stats = frame["stats"]
                if on_frame is not None:
                    on_frame(frame)
                if kind in TERMINAL_FRAMES:
                    return run

    def server_stats(self) -> dict[str, Any]:
        """The live introspection payload (requests, coalesces, metrics)."""
        run = self.submit({"op": "stats"}).raise_for_error()
        if run.stats is None:
            raise ServerError("stats request returned no stats frame")
        return run.stats
