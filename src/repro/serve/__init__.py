"""Compile-as-a-service: the streaming JSONL server and its client.

The service turns the streaming experiment API into shared infrastructure:
an asyncio server (:mod:`~repro.serve.server`) speaks newline-delimited
JSON frames (:mod:`~repro.serve.protocol`) over TCP and Unix sockets,
coalesces concurrent identical requests onto one in-flight compile
(:mod:`~repro.serve.singleflight`), and streams each record or
pass-completion event the moment it exists.  A blocking client
(:mod:`~repro.serve.client`) backs the ``repro submit`` CLI verb and the
test suites.  Stdlib-only by design — deploying the service adds no
dependency the compiler itself does not have.
"""

from repro.serve.client import ServeClient, ServerError, StreamedRun
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    TERMINAL_FRAMES,
    ProtocolError,
    decode_frame,
    encode_frame,
    validate_request,
)
from repro.serve.server import ReproServer, ServeConfig, ServerThread, request_key
from repro.serve.singleflight import InflightStream, SingleFlight

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "TERMINAL_FRAMES",
    "InflightStream",
    "ProtocolError",
    "ReproServer",
    "ServeClient",
    "ServeConfig",
    "ServerError",
    "ServerThread",
    "SingleFlight",
    "StreamedRun",
    "decode_frame",
    "encode_frame",
    "request_key",
    "validate_request",
]
