"""The asyncio compile server: bounded workers, coalescing, graceful drain.

:class:`ReproServer` listens on TCP and/or a Unix socket, speaks the JSONL
frame protocol (:mod:`repro.serve.protocol`), and executes compile work on
a bounded thread pool (``max_inflight`` concurrent compiles) so a traffic
burst queues instead of forking the machine.  The asyncio side only ever
shuttles bytes: producers run in worker threads, publish encoded frames
into an :class:`~repro.serve.singleflight.InflightStream`, and every
connection subscribed to that stream forwards the identical bytes.

Single-flight coalescing happens at request-key granularity: a compile
request's key hashes the *circuit fingerprint* plus the resolved settings
(the same :func:`~repro.pipeline.cache.circuit_fingerprint` the artifact
cache keys on), an experiment request's key hashes the normalized request,
so simultaneous identical requests cost one compile and N subscriptions.
Repeat traffic that misses the single-flight window still hits the shared
artifact cache — the server holds one cache for its whole lifetime, swept
(stale shard scratch) and verified (unreadable entries dropped, counted)
at startup.

Shutdown is a drain, not a guillotine: listeners close first (no new
connections), in-flight requests run to their terminal frame (bounded by
``drain_timeout``), stragglers are cancelled, and the worker pool shuts
down with queued work cancelled.  A request arriving on a live connection
mid-drain gets an ``error`` frame with kind ``draining``.

:class:`ServerThread` hosts a server on a background event loop for tests,
benchmarks, and synchronous embedders.
"""

from __future__ import annotations

import asyncio
import hashlib
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro import obs
from repro.circuits.benchmarks import make_benchmark
from repro.errors import ReproError
from repro.experiments.api import get_experiment
from repro.experiments.runners import make_runner
from repro.pipeline import Pipeline, PipelineSettings
from repro.pipeline.cache import (
    DiskCache,
    cache_summary,
    circuit_fingerprint,
)
from repro.pipeline.pipeline import baseline_passes
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    ack_frame,
    encode_frame,
    error_frame,
    hello_frame,
    pass_frame,
    record_frame,
    result_frame,
    stats_frame,
    summary_frame,
    validate_request,
)
from repro.serve.singleflight import InflightStream, SingleFlight


@dataclass
class ServeConfig:
    """Everything one server needs; the CLI maps flags onto this 1:1."""

    host: str = "127.0.0.1"
    #: TCP port (0 = ephemeral, bound port on ``server.port``); ``None``
    #: disables TCP entirely (Unix-socket-only deployments).
    port: int | None = 0
    unix_path: str | None = None
    #: Shared artifact cache (:class:`~repro.pipeline.cache.ArtifactCache`
    #: or ``None``) — one store serves every request of the server's life.
    cache: Any = None
    #: Concurrent compiles; further requests queue on the worker pool.
    max_inflight: int = 4
    #: Per-request wall-clock bound (seconds); ``None`` = unbounded.  A
    #: timed-out subscriber gets an ``error`` frame; a coalesced compile
    #: keeps running for its other subscribers.
    request_timeout: float | None = None
    #: How long shutdown waits for in-flight requests before cancelling.
    drain_timeout: float = 30.0


def request_key(request: dict[str, Any]) -> str:
    """The single-flight key of a normalized request.

    Compile/baseline requests key on the circuit's content fingerprint
    (reusing the cache's :func:`circuit_fingerprint` verbatim) plus the
    resolved :class:`PipelineSettings` and seed — the same identity the
    artifact cache addresses, one level up.  Experiment requests key on
    the normalized request fields (runner config included: coalesced
    subscribers share *one* stream, so its execution backend must be part
    of the identity).
    """
    if request["op"] == "experiment":
        parts = [
            "op=experiment",
            *(
                f"{name}={request[name]!r}"
                for name in (
                    "name", "scale", "seed", "runner", "workers", "shards",
                    "pathfind", "rewrite",
                )
            ),
        ]
    else:
        circuit = make_benchmark(
            request["benchmark"], request["qubits"], seed=request["seed"]
        )
        parts = [
            f"op={request['op']}",
            f"circuit={circuit_fingerprint(circuit)}",
            f"config={_settings_for(request)!r}",
            f"seed={request['seed']}",
            f"passes={request['passes']!r}",
        ]
    return hashlib.blake2b("\n".join(parts).encode(), digest_size=20).hexdigest()


def _settings_for(request: dict[str, Any]) -> PipelineSettings:
    return PipelineSettings(
        fusion_success_rate=request["rate"],
        resource_state_size=request["stars"],
        rsl_size=request["rsl_size"],
        virtual_size=request["virtual_size"],
        max_rsl=request["max_rsl"],
        pathfind=request["pathfind"],
        rewrite=request["rewrite"],
    )


class _NotifyingPass:
    """A pass wrapper that reports completion — the per-pass streaming hook.

    Wraps an already cache-wrapped stage (so a cache *hit* still counts as
    the pass completing) and forwards the full pass interface; the server
    wraps a pipeline's pass chain with these so a compile request streams
    one ``pass`` frame per stage as it finishes.
    """

    def __init__(self, inner, callback: Callable[[str, float], None]) -> None:
        self.inner = inner
        self.callback = callback
        self.name = inner.name
        self.requires = inner.requires
        self.provides = inner.provides
        self.rng_labels = inner.rng_labels
        self.cacheable = inner.cacheable

    def run(self, ctx) -> None:
        start = time.perf_counter()
        self.inner.run(ctx)
        self.callback(self.name, time.perf_counter() - start)


class ReproServer:
    """One serving process: listeners + worker pool + single-flight + cache."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.cache = self.config.cache
        self.singleflight = SingleFlight()
        self.port: int | None = None
        self._servers: list[asyncio.AbstractServer] = []
        self._pool = None  # ThreadPoolExecutor, created in start()
        self._conn_tasks: set[asyncio.Task] = set()
        self._draining = False
        self._started_at = time.time()
        self._requests_total = 0
        self._requests_active = 0
        self._requests_errors = 0
        self._requests_by_op: dict[str, int] = {}
        self._count_lock = threading.Lock()
        self._own_session = None  # obs.session() cm when we opened one

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind listeners, sweep/verify the cache, spin up the worker pool.

        The server always runs under a telemetry session — the stats
        request serves the registry snapshot — joining the active one
        (the CLI's ``--trace-out``/``--events-out`` session) or opening
        its own collect-only session for its lifetime.
        """
        from concurrent.futures import ThreadPoolExecutor

        if obs.active() is None:
            self._own_session = obs.session()
            self._own_session.__enter__()
        self._tele = obs.active()
        if isinstance(self.cache, DiskCache):
            # A crashed run's scratch and a torn entry both surface as
            # service pathologies (unbounded growth, mid-request unpickle
            # errors) — startup is the one moment to sweep and verify.
            self.cache.sweep_scratch()
            self.cache.verify()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.max_inflight, thread_name_prefix="serve"
        )
        self._started_at = time.time()
        if self.config.port is not None:
            server = await asyncio.start_server(
                self._on_connect,
                host=self.config.host,
                port=self.config.port,
                limit=MAX_FRAME_BYTES,
            )
            self._servers.append(server)
            self.port = server.sockets[0].getsockname()[1]
        if self.config.unix_path is not None:
            server = await asyncio.start_unix_server(
                self._on_connect, path=self.config.unix_path, limit=MAX_FRAME_BYTES
            )
            self._servers.append(server)
        if not self._servers:
            raise ReproError("serve: neither a TCP port nor a unix socket given")
        obs.event(
            "serve_started", port=self.port, unix_path=self.config.unix_path
        )

    async def serve_forever(self) -> None:
        """Block until the listeners close (i.e. until :meth:`shutdown`)."""
        await asyncio.gather(
            *(server.wait_closed() for server in self._servers)
        )

    async def shutdown(self, drain_timeout: float | None = None) -> None:
        """Graceful drain: stop accepting, finish in-flight, then tear down."""
        if drain_timeout is None:
            drain_timeout = self.config.drain_timeout
        self._draining = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        deadline = time.monotonic() + drain_timeout
        while self._requests_active and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
        if self.config.unix_path is not None:
            Path(self.config.unix_path).unlink(missing_ok=True)
        obs.event("serve_stopped", requests=self._requests_total)
        if self._own_session is not None:
            self._own_session.__exit__(None, None, None)
            self._own_session = None

    # -- connection handling -------------------------------------------------

    async def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (
            asyncio.CancelledError,
            ConnectionError,
            asyncio.IncompleteReadError,
        ):
            pass  # client went away or we are tearing down — both fine
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await self._send(writer, hello_frame())
        while True:
            try:
                line = await reader.readline()
            except ValueError:  # over the stream limit: a garbage client
                await self._send(
                    writer, error_frame("request line too long", kind="protocol")
                )
                return
            if not line:
                return  # EOF: client done with this connection
            if not line.strip():
                continue
            if self._draining:
                await self._send(
                    writer, error_frame("server is draining", kind="draining")
                )
                return
            try:
                request = validate_request(_parse_request(line))
            except ProtocolError as exc:
                # A malformed request fails *that request*; the connection
                # stays usable (the client may just have typoed one field).
                self._bump(errors=True)
                await self._send(writer, error_frame(str(exc), kind="protocol"))
                continue
            with self._count_lock:
                self._requests_active += 1
            try:
                await asyncio.wait_for(
                    self._dispatch(request, writer), self.config.request_timeout
                )
            except asyncio.TimeoutError:
                # The subscriber is cancelled mid-frame-stream, so the line
                # discipline is broken: error out and close the connection.
                # A coalesced producer keeps running for other subscribers.
                self._bump(errors=True)
                await self._send(
                    writer,
                    error_frame(
                        f"request exceeded {self.config.request_timeout}s",
                        kind="timeout",
                    ),
                )
                return
            finally:
                with self._count_lock:
                    self._requests_active -= 1

    async def _dispatch(
        self, request: dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        op = request["op"]
        self._bump(op=op)
        obs.count("serve.requests")
        if op == "stats":
            await self._send(
                writer, ack_frame(request["id"], op, key="stats", coalesced=False)
            )
            await self._send(writer, stats_frame(self.stats()))
            return
        try:
            key = request_key(request)
        except ReproError as exc:  # e.g. unknown benchmark family
            self._bump(errors=True)
            await self._send(writer, error_frame(str(exc), kind="request"))
            return
        stream, leader = self.singleflight.join(
            key, lambda s: self._pool.submit(self._produce, s, request)
        )
        if not leader:
            obs.count("serve.singleflight.coalesced")
        await self._send(writer, ack_frame(request["id"], op, key, not leader))
        async for chunk in stream.asubscribe():
            writer.write(chunk)
            await writer.drain()

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, frame: dict[str, Any]) -> None:
        writer.write(encode_frame(frame))
        await writer.drain()

    def _bump(self, op: str | None = None, errors: bool = False) -> None:
        with self._count_lock:
            if op is not None:
                self._requests_total += 1
                self._requests_by_op[op] = self._requests_by_op.get(op, 0) + 1
            if errors:
                self._requests_errors += 1

    # -- producers (worker threads) ------------------------------------------

    def _produce(self, stream: InflightStream, request: dict[str, Any]) -> None:
        """Run one compile/experiment, publishing frames; always finishes."""
        obs.count("serve.produced")
        start = time.perf_counter()
        try:
            if request["op"] == "experiment":
                self._produce_experiment(stream, request, start)
            else:
                self._produce_compile(stream, request, start)
        except Exception as exc:
            # Failure is a frame, not an exception: every subscriber of the
            # stream (current and late-joining) must see the same terminal.
            # Validator rejections additionally ship their machine-readable
            # diagnostics so clients see rule/severity/location, not just a
            # flattened message.
            details = (
                exc.to_json_obj() if hasattr(exc, "to_json_obj") else None
            )
            self._bump(errors=True)
            self.singleflight.retire(stream.key, stream)
            stream.publish(
                encode_frame(
                    error_frame(str(exc), kind=type(exc).__name__, details=details)
                )
            )
        finally:
            self.singleflight.finish(stream.key, stream)

    def _produce_experiment(
        self, stream: InflightStream, request: dict[str, Any], start: float
    ) -> None:
        experiment = get_experiment(request["name"])
        runner = make_runner(
            request["runner"],
            max_workers=request["workers"],
            cache=self.cache,
            shards=request["shards"],
        )
        hits = misses = seq = 0
        for record in experiment.iter_records(
            request["scale"],
            seed=request["seed"],
            runner=runner,
            pathfind=request["pathfind"],
            rewrite=request["rewrite"],
        ):
            stream.publish(encode_frame(record_frame(seq, record)))
            seq += 1
            hits += int(record.metrics.get("cache_hits", 0))
            misses += int(record.metrics.get("cache_misses", 0))
            for name, seconds in record.timings.items():
                obs.observe(f"serve.pass_seconds.{name}", seconds)
        self._publish_summary(
            stream, "experiment", records=seq,
            cache=cache_summary(hits, misses), start=start,
        )

    def _produce_compile(
        self, stream: InflightStream, request: dict[str, Any], start: float
    ) -> None:
        settings = _settings_for(request)
        circuit = make_benchmark(
            request["benchmark"], request["qubits"], seed=request["seed"]
        )
        baseline = request["op"] == "baseline"
        pipeline = Pipeline(
            settings,
            passes=baseline_passes() if baseline else None,
            seed=request["seed"],
            cache=self.cache,
        )
        if request["passes"]:
            # Same vocabulary and slotting as the CLI's --passes; unknown
            # names or bad insertions surface as error frames (exactly the
            # validator fail-fast contract, one layer up).
            from repro.passes import get_pass

            for name in reversed(
                [n.strip() for n in request["passes"].split(",") if n.strip()]
            ):
                cls = get_pass(name)
                pipeline = pipeline.insert_pass(
                    cls(), after=getattr(cls, "default_slot", None)
                )

        def on_pass(name: str, seconds: float) -> None:
            stream.publish(encode_frame(pass_frame(name, seconds)))
            obs.observe(f"serve.pass_seconds.{name}", seconds)

        # Wrap *after* construction so cache wrappers sit inside: a cache
        # hit still completes the pass and still streams its frame.
        pipeline.passes = tuple(
            _NotifyingPass(stage, on_pass) for stage in pipeline.passes
        )
        if baseline:
            # compile_baseline would rebuild the chain (losing the
            # notifiers); run the context against our wrapped chain and
            # finish the result exactly as compile_baseline does.
            ctx = settings.context_for(circuit, request["seed"])
            pipeline.run(ctx)
            result = ctx.require("baseline")
            result.metrics = dict(ctx.metrics)
            result.spans = list(ctx.spans)
            payload = {
                "benchmark": circuit.name,
                "num_qubits": request["qubits"],
                "rsl_count": result.rsl_count,
                "fusion_count": result.fusion_count,
                "restarts": result.restarts,
                "capped": result.capped,
            }
        else:
            result = pipeline.compile(circuit)
            payload = {
                "benchmark": circuit.name,
                "num_qubits": result.num_qubits,
                "rsl_count": result.rsl_count,
                "fusion_count": result.fusion_count,
                "logical_layers": result.logical_layers,
                "pl_ratio": result.pl_ratio,
                "pass_timings": dict(result.timings_by_pass),
            }
        metrics = dict(result.metrics)
        payload["cache"] = cache_summary(
            int(metrics.get("cache_hits", 0)), int(metrics.get("cache_misses", 0))
        )
        stream.publish(encode_frame(result_frame(request["op"], payload)))
        self._publish_summary(
            stream, request["op"], records=0, cache=payload["cache"], start=start
        )

    def _publish_summary(
        self,
        stream: InflightStream,
        op: str,
        *,
        records: int,
        cache: dict[str, Any],
        start: float,
    ) -> None:
        elapsed = time.perf_counter() - start
        obs.observe("serve.request_seconds", elapsed)
        # Retire the key *before* the terminal frame goes out: a client that
        # sees the summary and immediately resubmits must start a fresh
        # flight (served from the warm cache), not replay this response.
        self.singleflight.retire(stream.key, stream)
        stream.publish(
            encode_frame(
                summary_frame(
                    op,
                    records=records,
                    elapsed_s=elapsed,
                    cache=cache,
                    cache_session=(
                        self.cache.stats() if self.cache is not None else None
                    ),
                    metrics=(
                        self._tele.metrics.snapshot()
                        if self._tele is not None
                        else None
                    ),
                )
            )
        )

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """The live introspection payload behind the ``stats`` op."""
        with self._count_lock:
            requests = {
                "total": self._requests_total,
                "active": self._requests_active,
                "errors": self._requests_errors,
                "by_op": dict(self._requests_by_op),
            }
        return {
            "uptime_s": time.time() - self._started_at,
            "draining": self._draining,
            "max_inflight": self.config.max_inflight,
            "requests": requests,
            "singleflight": self.singleflight.stats(),
            "cache_session": self.cache.stats() if self.cache is not None else None,
            "metrics": (
                self._tele.metrics.snapshot() if self._tele is not None else None
            ),
        }


def _parse_request(line: bytes) -> Any:
    import json

    try:
        return json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"unparsable request: {exc}") from None


# ---------------------------------------------------------------------------
# Background-thread hosting (tests, benches, sync embedders)
# ---------------------------------------------------------------------------


@dataclass
class ServerThread:
    """A :class:`ReproServer` on its own event loop in a daemon thread.

    ``start()`` returns once the listeners are bound (``server.port`` is
    readable); ``stop()`` runs the graceful drain and joins the thread.
    Usable as a context manager — the shape every server test and the
    serve bench share.
    """

    config: ServeConfig = field(default_factory=ServeConfig)
    server: ReproServer | None = None

    def start(self) -> "ServerThread":
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()), daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ReproError("serve: server thread did not start within 30s")
        if self._startup_error is not None:
            self._thread.join(timeout=5)
            raise self._startup_error
        return self

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.server = ReproServer(self.config)
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await self.server.shutdown()

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)

    @property
    def port(self) -> int | None:
        return self.server.port if self.server is not None else None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
