"""Dense statevector simulation of circuits (validation oracle).

Used by the test-suite to check that (a) the ``{J, CZ}`` lowering preserves
every benchmark's unitary action and (b) the MBQC execution of a measurement
pattern reproduces the circuit it was translated from.  Not used by the
compiler itself — compilation never simulates amplitudes.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gates import gate_matrix
from repro.errors import CircuitError

#: Refuse dense simulation beyond this width (2^14 amplitudes is plenty for tests).
MAX_DENSE_QUBITS = 14


def apply_gate(state: np.ndarray, matrix: np.ndarray, qubits: tuple[int, ...], num_qubits: int) -> np.ndarray:
    """Apply ``matrix`` on ``qubits`` (qubit 0 = most significant axis)."""
    k = len(qubits)
    tensor = state.reshape([2] * num_qubits)
    axes = list(qubits)
    tensor = np.moveaxis(tensor, axes, range(k))
    folded = tensor.reshape(2**k, -1)
    folded = matrix @ folded
    tensor = folded.reshape([2] * num_qubits)
    tensor = np.moveaxis(tensor, range(k), axes)
    return tensor.reshape(-1)


def simulate_statevector(circuit: Circuit, initial: np.ndarray | None = None) -> np.ndarray:
    """The statevector after running ``circuit`` from ``|0...0>`` (or ``initial``)."""
    if circuit.num_qubits > MAX_DENSE_QUBITS:
        raise CircuitError(
            f"dense simulation capped at {MAX_DENSE_QUBITS} qubits, "
            f"got {circuit.num_qubits}"
        )
    dim = 2**circuit.num_qubits
    if initial is None:
        state = np.zeros(dim, dtype=complex)
        state[0] = 1.0
    else:
        state = np.asarray(initial, dtype=complex).copy()
        if state.shape != (dim,):
            raise CircuitError(f"initial state must have shape ({dim},)")
    for gate in circuit.gates:
        state = apply_gate(state, gate_matrix(gate), gate.qubits, circuit.num_qubits)
    return state


def simulate_unitary(circuit: Circuit) -> np.ndarray:
    """The full unitary of ``circuit`` (column ``b`` = image of basis state ``b``)."""
    if circuit.num_qubits > MAX_DENSE_QUBITS // 2:
        raise CircuitError("unitary simulation is quadratically sized; keep it small")
    dim = 2**circuit.num_qubits
    unitary = np.eye(dim, dtype=complex)
    for column in range(dim):
        unitary[:, column] = simulate_statevector(
            circuit, initial=np.eye(dim, dtype=complex)[:, column]
        )
    return unitary


def states_equal_up_to_phase(a: np.ndarray, b: np.ndarray, tolerance: float = 1e-8) -> bool:
    """Whether two state vectors agree up to a global phase."""
    overlap = np.vdot(a, b)
    return bool(abs(abs(overlap) - 1.0) <= tolerance * max(1.0, np.linalg.norm(a) * np.linalg.norm(b)))


def unitaries_equal_up_to_phase(a: np.ndarray, b: np.ndarray, tolerance: float = 1e-8) -> bool:
    """Whether two unitaries agree up to a global phase."""
    # Align phases via the largest entry of a.
    index = np.unravel_index(np.argmax(np.abs(a)), a.shape)
    if abs(b[index]) < tolerance:
        return False
    phase = a[index] / b[index]
    return bool(np.allclose(a, phase * b, atol=max(tolerance, 1e-10)))
