"""Lowering arbitrary circuits to the ``{J(alpha), CZ}`` universal set.

The MBQC translation (Fig. 3 of the paper) consumes circuits written with
``J(alpha) = H . P(alpha)`` and ``CZ`` only.  The identities used here:

* ``H = J(0)``
* ``P(theta) = J(0) J(theta)``   (apply ``J(theta)`` first, then ``J(0)``)
* ``Rz(theta) = P(theta)`` up to global phase
* ``Rx(theta) = J(theta) J(0)`` (``H Rz(theta) H``)
* ``CX(c, t) = (J(0) on t) CZ (J(0) on t)``
* ``CCX`` via the standard 7-T decomposition, ``SWAP`` via three ``CX``.

Adjacent ``J`` cancellation (``J(0) J(0) = I`` and angle merging through
``P``) is applied as a peephole pass, mirroring how PyZX would simplify the
pattern before mapping.
"""

from __future__ import annotations

import math

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.errors import CircuitError

_PI = math.pi


def _lower_gate(gate: Gate, out: Circuit) -> None:
    """Append the ``{J, CZ}`` expansion of ``gate`` to ``out``."""
    name = gate.name
    qubits = gate.qubits
    if name == "j":
        out.j(gate.params[0], qubits[0])
    elif name == "cz":
        out.cz(*qubits)
    elif name == "h":
        out.j(0.0, qubits[0])
    elif name in ("rz", "p"):
        out.j(gate.params[0], qubits[0])
        out.j(0.0, qubits[0])
    elif name == "z":
        out.j(_PI, qubits[0])
        out.j(0.0, qubits[0])
    elif name == "s":
        out.j(_PI / 2, qubits[0])
        out.j(0.0, qubits[0])
    elif name == "sdg":
        out.j(-_PI / 2, qubits[0])
        out.j(0.0, qubits[0])
    elif name == "t":
        out.j(_PI / 4, qubits[0])
        out.j(0.0, qubits[0])
    elif name == "tdg":
        out.j(-_PI / 4, qubits[0])
        out.j(0.0, qubits[0])
    elif name == "x":
        out.j(0.0, qubits[0])
        out.j(_PI, qubits[0])
    elif name == "rx":
        out.j(0.0, qubits[0])
        out.j(gate.params[0], qubits[0])
    elif name == "y":
        # Y = i X Z: lower as Z then X (global phase dropped).
        _lower_gate(Gate("z", qubits), out)
        _lower_gate(Gate("x", qubits), out)
    elif name == "ry":
        # Ry(t) = Rz(pi/2) Rx(t) Rz(-pi/2) as matrices; rightmost runs first.
        _lower_gate(Gate("rz", qubits, (-_PI / 2,)), out)
        _lower_gate(Gate("rx", qubits, gate.params), out)
        _lower_gate(Gate("rz", qubits, (_PI / 2,)), out)
    elif name == "cx":
        control, target = qubits
        out.j(0.0, target)
        out.cz(control, target)
        out.j(0.0, target)
    elif name == "cp":
        # Controlled phase via two CX and three Rz (exact up to global phase).
        theta = gate.params[0]
        control, target = qubits
        _lower_gate(Gate("rz", (control,), (theta / 2,)), out)
        _lower_gate(Gate("rz", (target,), (theta / 2,)), out)
        _lower_gate(Gate("cx", (control, target)), out)
        _lower_gate(Gate("rz", (target,), (-theta / 2,)), out)
        _lower_gate(Gate("cx", (control, target)), out)
    elif name == "swap":
        a, b = qubits
        for pair in ((a, b), (b, a), (a, b)):
            _lower_gate(Gate("cx", pair), out)
    elif name == "ccx":
        c1, c2, target = qubits
        steps = [
            Gate("h", (target,)),
            Gate("cx", (c2, target)),
            Gate("tdg", (target,)),
            Gate("cx", (c1, target)),
            Gate("t", (target,)),
            Gate("cx", (c2, target)),
            Gate("tdg", (target,)),
            Gate("cx", (c1, target)),
            Gate("t", (c2,)),
            Gate("t", (target,)),
            Gate("h", (target,)),
            Gate("cx", (c1, c2)),
            Gate("t", (c1,)),
            Gate("tdg", (c2,)),
            Gate("cx", (c1, c2)),
        ]
        for step in steps:
            _lower_gate(step, out)
    else:
        raise CircuitError(f"no {{J, CZ}} lowering for gate {name!r}")


def _merge_adjacent_j(circuit: Circuit) -> Circuit:
    """Peephole pass: cancel ``J(0) J(0)`` pairs per wire.

    ``J(0) = H`` so two adjacent ``J(0)`` on the same wire (with nothing in
    between on that wire) are the identity.  This is the only always-safe
    J-merge; angle fusion through ``P`` is left to the measurement pattern,
    where it happens for free (adjacent ``E(0)`` measurements).
    """
    out = Circuit(circuit.num_qubits, name=circuit.name)
    pending: dict[int, Gate] = {}  # wire -> buffered J(0)

    def flush(qubit: int) -> None:
        gate = pending.pop(qubit, None)
        if gate is not None:
            out.append(gate)

    for gate in circuit.gates:
        if gate.name == "j" and gate.params[0] == 0.0:
            qubit = gate.qubits[0]
            if qubit in pending:
                pending.pop(qubit)  # J(0) J(0) = I
            else:
                pending[qubit] = gate
            continue
        for qubit in gate.qubits:
            flush(qubit)
        out.append(gate)
    for qubit in sorted(pending):
        flush(qubit)
    return out


def to_jcz(circuit: Circuit, simplify: bool = True) -> Circuit:
    """Lower ``circuit`` to ``{J(alpha), CZ}`` (global phases dropped).

    With ``simplify`` (default) adjacent ``J(0)`` pairs are cancelled.
    """
    lowered = Circuit(circuit.num_qubits, name=f"{circuit.name}:jcz")
    for gate in circuit.gates:
        _lower_gate(gate, lowered)
    if simplify:
        lowered = _merge_adjacent_j(lowered)
    return lowered
