"""Circuit frontend: gate IR, {J, CZ} lowering, benchmarks, dense validation."""

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate, gate_matrix
from repro.circuits.jcz import to_jcz
from repro.circuits.benchmarks import (
    BENCHMARKS,
    make_benchmark,
    qaoa,
    qft,
    random_maxcut_graph,
    rca,
    vqe,
)
from repro.circuits.simulate import (
    simulate_statevector,
    simulate_unitary,
    states_equal_up_to_phase,
    unitaries_equal_up_to_phase,
)

__all__ = [
    "Circuit",
    "Gate",
    "gate_matrix",
    "to_jcz",
    "BENCHMARKS",
    "make_benchmark",
    "qaoa",
    "qft",
    "rca",
    "vqe",
    "random_maxcut_graph",
    "simulate_statevector",
    "simulate_unitary",
    "states_equal_up_to_phase",
    "unitaries_equal_up_to_phase",
]
