"""A minimal, explicit quantum circuit IR.

Circuits are ordered gate lists over ``num_qubits`` wires.  This is the
front-door of the compiler: benchmarks produce circuits, the ``jcz``
transpiler lowers them to the ``{J(alpha), CZ}`` universal set, and the MBQC
translator turns that into a program graph state.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.circuits.gates import Gate
from repro.errors import CircuitError


class Circuit:
    """An ordered list of :class:`Gate` applications on ``num_qubits`` wires."""

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits < 1:
            raise CircuitError(f"circuit needs >= 1 qubit, got {num_qubits}")
        self.num_qubits = num_qubits
        self.name = name
        self.gates: list[Gate] = []

    # -- container protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def __getitem__(self, index: int) -> Gate:
        return self.gates[index]

    # -- gate appenders -----------------------------------------------------

    def append(self, gate: Gate) -> "Circuit":
        """Append a pre-built gate after validating its qubit indices."""
        for qubit in gate.qubits:
            if not 0 <= qubit < self.num_qubits:
                raise CircuitError(
                    f"qubit {qubit} out of range for {self.num_qubits}-qubit circuit"
                )
        self.gates.append(gate)
        return self

    def add(self, name: str, *qubits: int, param: float | None = None) -> "Circuit":
        """Append gate ``name`` on ``qubits`` (``param`` for rotation gates)."""
        params = () if param is None else (float(param),)
        return self.append(Gate(name, tuple(qubits), params))

    def h(self, q: int) -> "Circuit":
        return self.add("h", q)

    def x(self, q: int) -> "Circuit":
        return self.add("x", q)

    def y(self, q: int) -> "Circuit":
        return self.add("y", q)

    def z(self, q: int) -> "Circuit":
        return self.add("z", q)

    def s(self, q: int) -> "Circuit":
        return self.add("s", q)

    def sdg(self, q: int) -> "Circuit":
        return self.add("sdg", q)

    def t(self, q: int) -> "Circuit":
        return self.add("t", q)

    def tdg(self, q: int) -> "Circuit":
        return self.add("tdg", q)

    def rx(self, theta: float, q: int) -> "Circuit":
        return self.add("rx", q, param=theta)

    def ry(self, theta: float, q: int) -> "Circuit":
        return self.add("ry", q, param=theta)

    def rz(self, theta: float, q: int) -> "Circuit":
        return self.add("rz", q, param=theta)

    def p(self, theta: float, q: int) -> "Circuit":
        return self.add("p", q, param=theta)

    def j(self, alpha: float, q: int) -> "Circuit":
        return self.add("j", q, param=alpha)

    def cx(self, control: int, target: int) -> "Circuit":
        return self.add("cx", control, target)

    def cz(self, a: int, b: int) -> "Circuit":
        return self.add("cz", a, b)

    def cp(self, theta: float, control: int, target: int) -> "Circuit":
        return self.add("cp", control, target, param=theta)

    def swap(self, a: int, b: int) -> "Circuit":
        return self.add("swap", a, b)

    def ccx(self, c1: int, c2: int, target: int) -> "Circuit":
        return self.add("ccx", c1, c2, target)

    # -- queries --------------------------------------------------------------

    @property
    def gate_count(self) -> int:
        return len(self.gates)

    def count(self, name: str) -> int:
        """Number of gates named ``name``."""
        return sum(1 for gate in self.gates if gate.name == name)

    def depth(self) -> int:
        """Circuit depth: longest chain of gates sharing qubits."""
        wire_depth = [0] * self.num_qubits
        for gate in self.gates:
            level = 1 + max(wire_depth[q] for q in gate.qubits)
            for q in gate.qubits:
                wire_depth[q] = level
        return max(wire_depth, default=0)

    def is_jcz(self) -> bool:
        """Whether the circuit already uses only ``{J, CZ}``."""
        return all(gate.name in ("j", "cz") for gate in self.gates)

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        """Append many gates."""
        for gate in gates:
            self.append(gate)
        return self

    def copy(self) -> "Circuit":
        clone = Circuit(self.num_qubits, name=self.name)
        clone.gates = list(self.gates)
        return clone

    def __str__(self) -> str:
        header = f"{self.name}: {self.num_qubits} qubits, {len(self.gates)} gates"
        body = "\n".join(f"  {gate}" for gate in self.gates)
        return f"{header}\n{body}" if body else header
