"""Gate vocabulary for the circuit frontend.

The compiler's native gate set is ``{J(alpha), CZ}`` (Section 2.1): ``J``
generates all one-qubit unitaries and ``CZ`` provides entanglement, and both
have direct MBQC translations.  Everything else here exists so benchmarks can
be written naturally and then lowered by :mod:`repro.circuits.jcz`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CircuitError

#: Gates taking no parameter, with their arities.
FIXED_GATES: dict[str, int] = {
    "h": 1, "x": 1, "y": 1, "z": 1, "s": 1, "sdg": 1, "t": 1, "tdg": 1,
    "cx": 2, "cz": 2, "swap": 2, "ccx": 3,
}

#: Gates taking one angle parameter, with their arities.
PARAM_GATES: dict[str, int] = {
    "rx": 1, "ry": 1, "rz": 1, "p": 1, "j": 1, "cp": 2,
}


@dataclass(frozen=True)
class Gate:
    """One gate application: a name, target qubits, and optional parameters."""

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        arity = FIXED_GATES.get(self.name, PARAM_GATES.get(self.name))
        if arity is None:
            raise CircuitError(f"unknown gate {self.name!r}")
        if len(self.qubits) != arity:
            raise CircuitError(
                f"gate {self.name!r} expects {arity} qubits, got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"gate {self.name!r} has repeated qubits {self.qubits}")
        expected_params = 1 if self.name in PARAM_GATES else 0
        if len(self.params) != expected_params:
            raise CircuitError(
                f"gate {self.name!r} expects {expected_params} parameter(s), "
                f"got {len(self.params)}"
            )

    @property
    def is_entangling(self) -> bool:
        """Whether the gate acts on more than one qubit."""
        return len(self.qubits) > 1

    def __str__(self) -> str:
        args = ", ".join(str(q) for q in self.qubits)
        if self.params:
            return f"{self.name}({self.params[0]:.4f}) {args}"
        return f"{self.name} {args}"


# ----------------------------------------------------------------------
# Matrices (used by the dense validator, not by the compiler itself)
# ----------------------------------------------------------------------

_SQRT1_2 = 1 / math.sqrt(2)


def gate_matrix(gate: Gate) -> np.ndarray:
    """Unitary matrix of ``gate`` in the computational basis (little care for
    global phase — comparisons in the tests are phase-insensitive)."""
    name = gate.name
    if name == "h":
        return np.array([[1, 1], [1, -1]], dtype=complex) * _SQRT1_2
    if name == "x":
        return np.array([[0, 1], [1, 0]], dtype=complex)
    if name == "y":
        return np.array([[0, -1j], [1j, 0]], dtype=complex)
    if name == "z":
        return np.diag([1, -1]).astype(complex)
    if name == "s":
        return np.diag([1, 1j]).astype(complex)
    if name == "sdg":
        return np.diag([1, -1j]).astype(complex)
    if name == "t":
        return np.diag([1, np.exp(1j * math.pi / 4)])
    if name == "tdg":
        return np.diag([1, np.exp(-1j * math.pi / 4)])
    if name == "rz":
        (theta,) = gate.params
        return np.diag([np.exp(-1j * theta / 2), np.exp(1j * theta / 2)])
    if name == "rx":
        (theta,) = gate.params
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)
    if name == "ry":
        (theta,) = gate.params
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[c, -s], [s, c]], dtype=complex)
    if name == "p":
        (theta,) = gate.params
        return np.diag([1, np.exp(1j * theta)])
    if name == "j":
        (alpha,) = gate.params
        return np.array(
            [[1, np.exp(1j * alpha)], [1, -np.exp(1j * alpha)]], dtype=complex
        ) * _SQRT1_2
    if name == "cx":
        return np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
        )
    if name == "cz":
        return np.diag([1, 1, 1, -1]).astype(complex)
    if name == "cp":
        (theta,) = gate.params
        return np.diag([1, 1, 1, np.exp(1j * theta)])
    if name == "swap":
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
        )
    if name == "ccx":
        matrix = np.eye(8, dtype=complex)
        matrix[6, 6] = matrix[7, 7] = 0
        matrix[6, 7] = matrix[7, 6] = 1
        return matrix
    raise CircuitError(f"no matrix for gate {name!r}")
