"""Heralded fusion sampling and accounting.

A :class:`FusionDevice` is the single point through which every simulated
fusion outcome flows, so #fusion (the paper's second metric) is counted in
exactly one place.  Outcomes are heralded (Section 1): the classical control
learns success/failure immediately and feeds subsequent decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import HardwareError
from repro.utils.rng import ensure_rng


@dataclass
class FusionTally:
    """Running counts of attempted fusions, by category."""

    attempted: int = 0
    succeeded: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, count: int, successes: int) -> None:
        self.attempted += count
        self.succeeded += successes
        self.by_kind[kind] = self.by_kind.get(kind, 0) + count

    @property
    def failed(self) -> int:
        return self.attempted - self.succeeded

    @property
    def observed_rate(self) -> float:
        """Empirical success rate (NaN until something was attempted)."""
        if self.attempted == 0:
            return float("nan")
        return self.succeeded / self.attempted

    def merge(self, other: "FusionTally") -> None:
        """Fold another tally into this one."""
        self.attempted += other.attempted
        self.succeeded += other.succeeded
        for kind, count in other.by_kind.items():
            self.by_kind[kind] = self.by_kind.get(kind, 0) + count


class FusionDevice:
    """Samples heralded fusion outcomes at the configured success rate."""

    def __init__(
        self,
        success_rate: float,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if not 0.0 < success_rate <= 1.0:
            raise HardwareError(f"success rate must be in (0, 1], got {success_rate}")
        self.success_rate = success_rate
        self.rng = ensure_rng(rng)
        self.tally = FusionTally()

    def attempt(self, kind: str = "leaf-leaf") -> bool:
        """One fusion attempt; returns the heralded outcome."""
        success = bool(self.rng.random() < self.success_rate)
        self.tally.record(kind, 1, int(success))
        return success

    def attempt_batch(self, count: int, kind: str = "leaf-leaf") -> np.ndarray:
        """``count`` independent attempts as a boolean array (vectorized)."""
        if count < 0:
            raise HardwareError(f"cannot attempt {count} fusions")
        outcomes = self.rng.random(count) < self.success_rate
        self.tally.record(kind, count, int(outcomes.sum()))
        return outcomes

    def attempt_grid(self, shape: tuple[int, ...], kind: str) -> np.ndarray:
        """Attempts shaped like ``shape`` (used for whole-RSL bond sampling)."""
        outcomes = self.rng.random(shape) < self.success_rate
        self.tally.record(kind, int(np.prod(shape)), int(outcomes.sum()))
        return outcomes

    def attempt_with_retries(self, retries: int, kind: str) -> tuple[bool, int]:
        """Attempt up to ``1 + retries`` times; returns (success, attempts used).

        Models the collective retry of Section 4.3: a failed connection is
        retried with redundant degrees while any remain.
        """
        attempts = 0
        for _ in range(1 + max(0, retries)):
            attempts += 1
            if self.attempt(kind):
                return True, attempts
        return False, attempts
