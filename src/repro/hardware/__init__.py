"""Photonic hardware model: RSGs, layers, fusion devices, delay lines."""

from repro.hardware.architecture import (
    HYPER_ADVANCED_FUSION_RATE,
    LATTICE_DEGREE_2D,
    LATTICE_DEGREE_3D,
    PRACTICAL_FUSION_RATE,
    HardwareConfig,
)
from repro.hardware.fusion import FusionDevice, FusionTally
from repro.hardware.delay import DelayLineBank, StoredEntry
from repro.hardware.rsg import MergeResult, ResourceStateLayer, RSGArray
from repro.hardware.folding import (
    FoldingPlan,
    folding_overhead_fraction,
    max_effective_side,
    plan_folding,
)

__all__ = [
    "HardwareConfig",
    "PRACTICAL_FUSION_RATE",
    "HYPER_ADVANCED_FUSION_RATE",
    "LATTICE_DEGREE_2D",
    "LATTICE_DEGREE_3D",
    "FusionDevice",
    "FusionTally",
    "DelayLineBank",
    "StoredEntry",
    "RSGArray",
    "ResourceStateLayer",
    "MergeResult",
    "FoldingPlan",
    "plan_folding",
    "max_effective_side",
    "folding_overhead_fraction",
]
