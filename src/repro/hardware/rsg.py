"""Resource state generation: RSG arrays and resource state layers.

An :class:`RSGArray` emits one :class:`ResourceStateLayer` per cycle: an
``N x N`` grid of star resource states.  For experiments that need the full
graph-state machinery (small scales), :meth:`ResourceStateLayer.build_graph`
materializes every star into a :class:`~repro.graphstate.graph.GraphState`;
the large-scale online pass instead works on the site/bond abstraction of
:mod:`repro.online.percolation`, which this module's merge simulation feeds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphstate.graph import GraphState
from repro.graphstate.resource import ResourceStateInstance, ResourceStateSpec, emit_star
from repro.hardware.architecture import HardwareConfig
from repro.hardware.fusion import FusionDevice


@dataclass
class ResourceStateLayer:
    """One RSG cycle's worth of resource states, arranged on a grid."""

    index: int
    size: int
    spec: ResourceStateSpec

    def build_graph(self) -> tuple[GraphState, dict[tuple[int, int], ResourceStateInstance]]:
        """Materialize all stars of the layer into one graph state.

        Node ids are ``((layer, row, col), k)`` with ``k = 0`` the root.
        Only practical for small layers — a 240x240 layer with 7-qubit stars
        is 400k qubits.
        """
        graph = GraphState()
        stars: dict[tuple[int, int], ResourceStateInstance] = {}
        for row in range(self.size):
            for col in range(self.size):
                tag = (self.index, row, col)
                stars[(row, col)] = emit_star(graph, self.spec, tag)
        return graph, stars


@dataclass
class MergeResult:
    """Per-site outcome of merging several RSLs into one layer (Fig. 7(c))."""

    alive: np.ndarray  # bool (N, N): site has a usable root after merging
    degrees: np.ndarray  # int (N, N): leaf budget remaining per site
    merge_fusions: int  # root-leaf fusions attempted (incl. retries)


class RSGArray:
    """The generator array: emits layers and performs the per-site merging."""

    def __init__(self, config: HardwareConfig) -> None:
        self.config = config
        self._next_index = 0

    def emit_layer(self) -> ResourceStateLayer:
        """Emit the next RSL in sequence."""
        layer = ResourceStateLayer(
            index=self._next_index,
            size=self.config.rsl_size,
            spec=self.config.resource_state,
        )
        self._next_index += 1
        return layer

    def merge_layers(self, device: FusionDevice) -> MergeResult:
        """Merge ``merged_rsls_per_layer`` RSLs into one high-degree layer.

        Each site attempts ``m - 1`` root-leaf fusions to chain ``m`` stars
        into one ``site_degree``-degree star.  A failed merge burns one leaf
        on each side (the photons are destroyed; the LC cleanup of Fig. 8 is
        tracked by the ledger elsewhere) and is retried while the joining
        star still has spare leaves — the collective retry of Section 4.3.

        A site stays alive if every chain join eventually succeeded; its
        remaining ``degrees`` is the leaf budget left for lattice bonds.
        """
        config = self.config
        n = config.rsl_size
        star_degree = config.resource_state.max_degree
        merges = config.merged_rsls_per_layer - 1

        alive = np.ones((n, n), dtype=bool)
        degrees = np.full((n, n), star_degree, dtype=np.int64)
        merge_fusions = 0
        if merges == 0:
            return MergeResult(alive=alive, degrees=degrees, merge_fusions=0)

        for _ in range(merges):
            # Budget for each join: a failed root-leaf fusion costs one leaf
            # of the accumulated star and one of the joiner; retries continue
            # while both sides keep >= 1 leaf to offer (collective retry,
            # Section 4.3).  On success the joiner's remaining leaves attach
            # to the accumulated root: degree -> degree - 1 + joiner_leaves.
            joiner = np.full((n, n), star_degree, dtype=np.int64)
            pending = alive.copy()
            while pending.any():
                attemptable = pending & (degrees >= 1) & (joiner >= 1)
                exhausted = pending & ~attemptable
                alive[exhausted] = False
                pending[exhausted] = False
                count = int(attemptable.sum())
                if count == 0:
                    break
                outcomes = device.attempt_batch(count, "root-leaf")
                merge_fusions += count
                success = np.zeros((n, n), dtype=bool)
                success[attemptable] = outcomes
                failure = attemptable & ~success
                degrees[success] += joiner[success] - 1
                pending[success] = False
                degrees[failure] -= 1
                joiner[failure] -= 1
        return MergeResult(alive=alive, degrees=degrees, merge_fusions=merge_fusions)
