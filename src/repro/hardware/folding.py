"""RSL extension by spatial/temporal folding (Section 2.2, Fig. 4).

The effective resource state layer is not bounded by the physical RSG array:
consecutive emission cycles can be *folded* into one large layer by fusing
the edges of several small RSLs — like folding a sheet of paper — trading
temporal fusions (and photon storage time) for spatial extent.  With photons
surviving ~5000 RSG cycles in delay lines, the layer can grow by up to
5000x.

This module computes the folding plans behind a :class:`HardwareConfig`'s
``rsl_size``: how many physical cycles one effective layer costs, whether the
photon lifetime admits it, and the extra edge fusions folding spends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import HardwareError


@dataclass(frozen=True)
class FoldingPlan:
    """How one effective RSL is assembled from physical emission cycles."""

    physical_side: int  # side of the physical RSG array
    effective_side: int  # side of the folded, effective RSL
    tiles_per_side: int  # folding factor along each axis
    cycles_per_layer: int  # RSG cycles consumed per effective layer
    seam_fusions: int  # edge fusions that stitch the tiles together
    oldest_photon_age: int  # cycles the first tile's photons wait

    @property
    def amplification(self) -> int:
        """Effective sites per physical site."""
        return self.tiles_per_side**2


def plan_folding(
    physical_side: int,
    effective_side: int,
    photon_lifetime: int = 5000,
) -> FoldingPlan:
    """Plan the folding of ``physical_side``-RSGs into an effective layer.

    The effective layer is tiled by ``ceil(effective/physical)^2`` physical
    RSLs emitted on consecutive cycles; each pair of adjacent tiles is
    stitched with a seam of edge fusions (one per boundary site).  The first
    tile's photons must survive until the last tile is emitted, which the
    photon lifetime must cover.
    """
    if physical_side < 1 or effective_side < 1:
        raise HardwareError("array sides must be positive")
    if effective_side < physical_side:
        raise HardwareError(
            f"effective side {effective_side} below the physical array "
            f"{physical_side}; folding only enlarges layers"
        )
    tiles = math.ceil(effective_side / physical_side)
    cycles = tiles * tiles
    oldest = cycles - 1
    if oldest > photon_lifetime:
        raise HardwareError(
            f"folding {tiles}x{tiles} tiles needs photons to wait {oldest} "
            f"cycles, beyond the lifetime of {photon_lifetime}"
        )
    # Seams: (tiles - 1) vertical and horizontal seam lines, each crossing
    # the full effective side.
    seam_fusions = 2 * (tiles - 1) * effective_side
    return FoldingPlan(
        physical_side=physical_side,
        effective_side=effective_side,
        tiles_per_side=tiles,
        cycles_per_layer=cycles,
        seam_fusions=seam_fusions,
        oldest_photon_age=oldest,
    )


def max_effective_side(physical_side: int, photon_lifetime: int = 5000) -> int:
    """Largest effective RSL side the lifetime admits (Fig. 4's 5000x).

    The binding constraint is ``tiles^2 - 1 <= lifetime``, so the side grows
    by a factor ``floor(sqrt(lifetime + 1))``.
    """
    if physical_side < 1:
        raise HardwareError("array side must be positive")
    tiles = int(math.isqrt(photon_lifetime + 1))
    return physical_side * max(1, tiles)


def folding_overhead_fraction(plan: FoldingPlan) -> float:
    """Seam fusions as a fraction of the layer's in-plane bond fusions."""
    side = plan.effective_side
    lattice_bonds = 2 * side * (side - 1)
    if lattice_bonds == 0:
        return 0.0
    return plan.seam_fusions / lattice_bonds
