"""The photonic hardware model (Section 2.2).

The machine is an array of resource state generators (RSGs) emitting one
star-like resource state each per ~1 ns cycle; states emitted in the same
cycle form a 2D resource state layer (RSL).  Spatial routing fuses neighbours
within an RSL; temporal routing (delay lines) fuses across RSLs.  Fusions are
heralded and succeed with a practical probability around 0.75; photons stored
in delay lines survive for about 5000 RSG cycles.

The compiler sees none of the optics — only this configuration object and the
heralded outcomes sampled by :class:`~repro.hardware.fusion.FusionDevice`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HardwareError
from repro.graphstate.resource import ResourceStateSpec

#: The practically-achievable boosted fusion success probability [11, 12].
PRACTICAL_FUSION_RATE = 0.75

#: The paper's "hyper-advanced" setting used in the top half of Table 2.
HYPER_ADVANCED_FUSION_RATE = 0.90

#: Photon lifetime in delay lines, in RSG cycles (Section 2.2).
DEFAULT_PHOTON_LIFETIME = 5000

#: Degree a site needs in the (2+1)-D reshaping: 4 spatial + 2 temporal.
LATTICE_DEGREE_3D = 6

#: Degree needed for a plain 2D square lattice.
LATTICE_DEGREE_2D = 4


@dataclass(frozen=True)
class HardwareConfig:
    """Everything the compiler knows about the machine.

    ``rsl_size`` is the side length N of the (square) resource state layer;
    the paper extends physical RSG arrays up to 5000x via the spatial/temporal
    folding of Fig. 4, so N here is the *effective* layer size.
    """

    rsl_size: int = 48
    resource_state: ResourceStateSpec = field(default_factory=ResourceStateSpec)
    fusion_success_rate: float = PRACTICAL_FUSION_RATE
    photon_loss_rate: float = 0.0
    photon_lifetime: int = DEFAULT_PHOTON_LIFETIME

    def __post_init__(self) -> None:
        if self.rsl_size < 2:
            raise HardwareError(f"RSL size must be >= 2, got {self.rsl_size}")
        if not 0.0 < self.fusion_success_rate <= 1.0:
            raise HardwareError(
                f"fusion success rate must be in (0, 1], got {self.fusion_success_rate}"
            )
        if not 0.0 <= self.photon_loss_rate < 1.0:
            raise HardwareError(
                f"photon loss rate must be in [0, 1), got {self.photon_loss_rate}"
            )
        if self.photon_lifetime < 1:
            raise HardwareError("photon lifetime must be at least one RSG cycle")

    @property
    def effective_fusion_rate(self) -> float:
        """Success rate after folding in photon loss.

        A fusion heralds success only if *both* photons are detected
        (Section 5.2), so loss at rate ``l`` scales the success probability
        by ``(1 - l)^2``.
        """
        survival = (1.0 - self.photon_loss_rate) ** 2
        return self.fusion_success_rate * survival

    @property
    def sites_per_rsl(self) -> int:
        """Number of lattice sites on one (merged) RSL."""
        return self.rsl_size * self.rsl_size

    @property
    def merged_rsls_per_layer(self) -> int:
        """RSLs root-leaf merged to give each site 3D-sufficient degree.

        7-qubit stars (degree 6) need no merging; 4-qubit stars (degree 3)
        need three (3 -> 5 -> 7 >= 6), matching Fig. 7(c).
        """
        return self.resource_state.merges_needed_for_degree(LATTICE_DEGREE_3D)

    @property
    def site_degree(self) -> int:
        """Degree of one merged site before any fusion failures."""
        degree = self.resource_state.max_degree
        for _ in range(self.merged_rsls_per_layer - 1):
            degree += self.resource_state.max_degree - 1
        return degree

    @property
    def redundant_degree(self) -> int:
        """Leaves left over after the six 3D bonds — the retry budget."""
        return max(0, self.site_degree - LATTICE_DEGREE_3D)
