"""Delay lines: the machine's temporary quantum memory (Section 2.2).

Optical fiber delay lines store flying photonic qubits for up to
``photon_lifetime`` RSG cycles (about 5000 at < 5%/km loss).  The virtual
memory of the FlexLattice IR — ``store_v_node`` / ``retrieve_v_node`` — is
implemented by pushing a node's surrounding physical qubits into delay lines
and popping them at the layer where they are needed.

The model tracks per-entry ages so the compiler can detect (and tests can
assert on) lifetime violations: an IR program whose cross-layer edges span
more routing layers than the photon lifetime is not executable.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

from repro.errors import HardwareError


@dataclass
class StoredEntry:
    """One node's photons parked in delay lines."""

    key: Hashable
    stored_at_cycle: int
    qubit_count: int


class DelayLineBank:
    """A bank of delay lines with lifetime accounting.

    ``advance()`` moves wall-clock time by one RSG cycle; entries older than
    the lifetime are reported as expired (photon loss) rather than silently
    kept, because the reshaping pass must treat them as failed connections.
    """

    def __init__(self, photon_lifetime: int, capacity: int | None = None) -> None:
        if photon_lifetime < 1:
            raise HardwareError("photon lifetime must be >= 1 cycle")
        if capacity is not None and capacity < 1:
            raise HardwareError("capacity must be >= 1 when given")
        self.photon_lifetime = photon_lifetime
        self.capacity = capacity
        self.cycle = 0
        self._entries: dict[Hashable, StoredEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def stored_qubits(self) -> int:
        """Total photonic qubits currently in the bank."""
        return sum(entry.qubit_count for entry in self._entries.values())

    def store(self, key: Hashable, qubit_count: int = 1) -> StoredEntry:
        """Push a node's photons into delay lines."""
        if key in self._entries:
            raise HardwareError(f"{key!r} is already stored")
        if self.capacity is not None and self.stored_qubits + qubit_count > self.capacity:
            raise HardwareError(
                f"delay-line capacity {self.capacity} exceeded storing {key!r}"
            )
        entry = StoredEntry(key=key, stored_at_cycle=self.cycle, qubit_count=qubit_count)
        self._entries[key] = entry
        return entry

    def retrieve(self, key: Hashable) -> StoredEntry:
        """Pop a node's photons; raises if expired or absent."""
        try:
            entry = self._entries.pop(key)
        except KeyError as exc:
            raise HardwareError(f"{key!r} is not stored") from exc
        if self.age(entry) > self.photon_lifetime:
            raise HardwareError(
                f"{key!r} exceeded the photon lifetime "
                f"({self.age(entry)} > {self.photon_lifetime} cycles)"
            )
        return entry

    def age(self, entry: StoredEntry) -> int:
        """Cycles the entry has spent in the bank so far."""
        return self.cycle - entry.stored_at_cycle

    def advance(self, cycles: int = 1) -> list[StoredEntry]:
        """Advance time; returns (and drops) entries that just expired."""
        if cycles < 0:
            raise HardwareError("cannot advance time backwards")
        self.cycle += cycles
        expired = [
            entry
            for entry in self._entries.values()
            if self.age(entry) > self.photon_lifetime
        ]
        for entry in expired:
            del self._entries[entry.key]
        return expired

    def keys(self) -> list[Hashable]:
        """Keys currently stored (insertion-ordered)."""
        return list(self._entries)
