"""Content-addressed artifact cache for the compiler pipeline.

Seed sweeps re-run the deterministic ``translate`` and ``offline-map``
stages once per seed even though only the online stages consume randomness.
This module removes that waste: a :class:`CachePass` wraps any cacheable
pass and memoizes its artifacts under a **content address** — a stable hash
of everything that feeds the stage:

* the circuit fingerprint (gate list, qubit count, name);
* the resolved hardware config and virtual size;
* the :class:`~repro.pipeline.settings.PipelineSettings`-derived options;
* for stochastic stages (``online-reshape``, ``baseline``), the derived
  child-stream seed the stage would draw from — the exact
  ``RandomStream.child(*labels, circuit.name)`` derivation, so two runs
  that would sample identical streams share one entry while different
  seeds never collide.

Deterministic stages omit the seed part, which is what lets a sweep over
the *seed axis* (same circuits, different online randomness) reuse the
translate/offline-map prefix across every rollout.

Two backends exist behind one interface: :class:`MemoryCache` (per-process
dict; serves the serial and thread runners) and :class:`DiskCache` (a
directory of pickle files with atomic writes; shareable across process
pools and across runs).  Both store *pickled bytes* and deserialize on
every hit, so a cached artifact is never aliased between compilations —
bit-identical results cannot be perturbed by downstream mutation.

The disk store doubles as the **artifact wire format between shards** of a
sharded run (see :class:`~repro.experiments.runners.ShardedRunner`): each
shard works against a :class:`ShardDiskCache` — reads fall through to the
coordinator's base directory, writes land in the shard's own delta
directory — and the coordinator folds completed deltas back with
:meth:`DiskCache.merge_from`.  A ``max_bytes`` budget with LRU eviction
(recency = entry file mtime, refreshed on every hit) keeps long-running
stores, merged shard caches included, bounded.

Hit/miss counts are recorded twice: on the cache object (session totals,
for reports) and in each compilation's ``PassContext.metrics`` (per-job
provenance that flows into ``CompilationResult.metrics`` and from there
into ``ExperimentRecord.metrics``, surviving process-pool boundaries).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import shutil
import tempfile
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any

from repro import obs
from repro.errors import CompilationError
from repro.pipeline.context import PassContext
from repro.pipeline.passes import CompilerPass

#: Bump when the key derivation or payload schema changes: stale entries
#: from older layouts must read as misses, never as wrong hits.  v2: the
#: option vocabulary grew the ``rewrite`` knob (pattern-rewrite pass on or
#: off), which keys rewritten and unrewritten chains apart.
CACHE_SCHEMA_VERSION = 2


def circuit_fingerprint(circuit) -> str:
    """Stable content hash of a circuit (gates, qubit count, name).

    The name participates because downstream artifacts may embed it (and
    RNG streams derive from it); two same-content circuits with different
    names therefore address different entries — a lost sharing opportunity,
    never a correctness hazard.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(f"{circuit.num_qubits}|{circuit.name}".encode())
    for gate in circuit.gates:
        digest.update(repr((gate.name, gate.qubits, gate.params)).encode())
    return digest.hexdigest()


class ArtifactCache:
    """Backend-agnostic half of the cache: keys, counters, (de)serialization.

    Subclasses implement :meth:`_read` / :meth:`_write` over raw bytes.
    ``hits``/``misses`` are session-local totals (they do not persist and,
    for process pools, do not aggregate across workers — per-job counts in
    ``PassContext.metrics`` do).
    """

    name = "cache"

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()

    # -- key derivation -----------------------------------------------------

    def key_for(self, stage: CompilerPass, ctx: PassContext) -> str:
        """The content address of ``stage``'s output for ``ctx``."""
        parts = [
            f"schema={CACHE_SCHEMA_VERSION}",
            f"pass={stage.name}",
            f"circuit={circuit_fingerprint(ctx.circuit)}",
            f"config={ctx.config!r}",
            f"virtual={ctx.virtual_size}",
            f"options={sorted(ctx.options.items(), key=lambda kv: kv[0])!r}",
        ]
        if stage.rng_labels:
            # The exact child-seed the stage's generator would start from:
            # stochastic stages are deterministic *given* this value.
            child = ctx.stream.child(*stage.rng_labels, ctx.circuit.name)
            parts.append(f"stream={child.seed}")
        digest = hashlib.blake2b("\n".join(parts).encode(), digest_size=20)
        return digest.hexdigest()

    # -- payloads -----------------------------------------------------------

    def fetch(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key`` (a fresh deserialized copy), or None."""
        blob = self._read(key)
        with self._lock:
            if blob is None:
                self.misses += 1
            else:
                self.hits += 1
        if blob is None:
            return None
        return pickle.loads(blob)

    def store(self, key: str, payload: dict[str, Any]) -> None:
        """Persist ``payload`` under ``key`` (last write wins; same content)."""
        self._write(key, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def stats(self) -> dict[str, Any]:
        """Session totals, for reports and the CLI."""
        return {"backend": self.name, **cache_summary(self.hits, self.misses)}

    # -- backend hooks ------------------------------------------------------

    def _read(self, key: str) -> bytes | None:
        raise NotImplementedError

    def _write(self, key: str, blob: bytes) -> None:
        raise NotImplementedError

    # -- pickling (process pools) -------------------------------------------

    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        del state["_lock"]  # locks do not pickle; workers get their own
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class MemoryCache(ArtifactCache):
    """In-process backend: a dict of pickled payloads.

    Shared by reference within one process (serial and thread runners); a
    process pool pickles it *by value*, so workers see a snapshot and new
    entries do not flow back — use :class:`DiskCache` to share across
    processes.
    """

    name = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._store: dict[str, bytes] = {}

    def __len__(self) -> int:
        return len(self._store)

    def _read(self, key: str) -> bytes | None:
        with self._lock:
            return self._store.get(key)

    def _write(self, key: str, blob: bytes) -> None:
        with self._lock:
            self._store[key] = blob


def _entry_path(root: Path, key: str) -> Path:
    """Where ``key``'s pickle lives under ``root`` (two-char fan-out)."""
    return root / key[:2] / f"{key}.pkl"


class DiskCache(ArtifactCache):
    """On-disk backend: one pickle file per entry, fanned out by key prefix.

    Writes are atomic (temp file + ``os.replace``), so concurrent writers —
    threads or whole process-pool workers — can race on a key and the loser
    simply overwrites identical content.  Pickles by *path*, which is what
    makes one cache shareable across a process pool and across runs.

    ``max_bytes`` bounds the store: after every write (and every
    :meth:`merge_from`) the least-recently-used entries are unlinked until
    the total payload fits the budget.  Recency is the entry file's mtime,
    refreshed on every hit, so eviction tracks *use*, not insertion — a
    long-running service keeps its working set.  Evicted entries simply
    read as misses and are recomputed; results are unaffected.
    """

    name = "disk"

    def __init__(
        self, directory: str | os.PathLike, max_bytes: int | None = None
    ) -> None:
        super().__init__()
        if max_bytes is not None and max_bytes <= 0:
            raise CompilationError(f"max_bytes must be positive, got {max_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.evictions = 0
        # Running payload estimate so a budgeted store does not pay a full
        # directory scan per write: seeded from disk once, bumped per
        # write, re-synced to truth by every authoritative eviction scan.
        self._approx_bytes = self.total_bytes() if max_bytes is not None else 0

    def _path(self, key: str) -> Path:
        return _entry_path(self.directory, key)

    def stats(self) -> dict[str, Any]:
        """Session totals plus this store's eviction count."""
        return {**super().stats(), "evictions": self.evictions}

    def _entries(self):
        """Every entry file currently in the store (depth-2 ``*.pkl`` only,
        so shard scratch under ``.shards/`` never counts as an entry)."""
        return self.directory.glob("*/*.pkl")

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def total_bytes(self) -> int:
        """Payload bytes currently on disk (entries only, not directories)."""
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:  # raced with a concurrent eviction
                continue
        return total

    def _read(self, key: str) -> bytes | None:
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None
        try:
            os.utime(path)  # refresh LRU recency: a hit is a use
        except OSError:
            pass  # concurrently evicted after the read — the hit stands
        return blob

    def _write(self, key: str, blob: bytes) -> None:
        if self.max_bytes is not None and len(blob) > self.max_bytes:
            # An artifact bigger than the whole budget can never be kept;
            # storing it would evict every warm entry and then itself.
            # Skip the write — the entry simply reads as a miss forever.
            return
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            dir=path.parent, prefix=f".{key[:8]}-", delete=False
        )
        try:
            handle.write(blob)
            # Durability before visibility: fsync the temp file so the
            # rename can never publish a truncated entry after a crash —
            # os.replace is atomic in the namespace, but without the fsync
            # the *data* may still be dirty page cache when the name flips.
            handle.flush()
            os.fsync(handle.fileno())
            handle.close()
            if self.max_bytes is not None:
                # Overwrite accounting: os.replace drops the old payload,
                # so only charge the size *delta* — charging the full blob
                # on every overwrite drifts the estimate upward until a
                # store sitting under budget pays a spurious full-directory
                # eviction scan on each write.
                try:
                    replaced = path.stat().st_size
                except OSError:
                    replaced = 0
            os.replace(handle.name, path)
        except BaseException:
            handle.close()
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        if self.max_bytes is not None:
            with self._lock:
                self._approx_bytes += len(blob) - replaced
                over_budget = self._approx_bytes > self.max_bytes
            if over_budget:
                self._evict_to_budget()

    # -- size budgeting -----------------------------------------------------

    #: Eviction low-water mark: scans drop the store to this fraction of
    #: ``max_bytes``, not to the brim, so a store hovering at its budget
    #: does not pay a full directory re-scan on every subsequent write.
    EVICT_TO_FRACTION = 0.9

    def _evict_to_budget(self) -> int:
        """Unlink least-recently-used entries until ``max_bytes`` is met.

        Safe against concurrent writers/evictors: stat and unlink races are
        tolerated (a vanished file was someone else's eviction).  Returns
        the number of entries this call removed.
        """
        if self.max_bytes is None:
            return 0
        entries = []
        total = 0
        for path in self._entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime_ns, str(path), stat.st_size, path))
            total += stat.st_size
        entries.sort()  # oldest first; path string breaks mtime ties stably
        removed = 0
        target = (
            self.max_bytes * self.EVICT_TO_FRACTION
            if total > self.max_bytes
            else self.max_bytes
        )
        for _mtime, _tie, size, path in entries:
            if total <= target:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
        with self._lock:
            self.evictions += removed
            self._approx_bytes = total  # re-sync the estimate to truth
        if removed:
            obs.count("cache.evictions", removed)
        return removed

    # -- maintenance (long-running services) --------------------------------

    def sweep_scratch(self) -> None:
        """Remove stale shard scratch under this store's ``.shards/``.

        A crashed sharded run (SIGKILL, OOM) skips ``shard_scratch``'s
        cleanup; until the *next sharded run* against the same store, the
        orphaned deltas sit outside the entry globs — invisible to the
        ``max_bytes`` budget — and grow the directory without bound.  A
        long-running service may never start a sharded run, so it sweeps
        explicitly at startup (same age gate as ``shard_scratch``:
        concurrent live runs' scratch is seconds old, never a day).
        """
        _sweep_stale_scratch(self.directory / ".shards")

    def verify(self) -> int:
        """Drop unreadable or truncated entries; returns how many.

        ``_write`` fsyncs before ``os.replace``, so a crash can no longer
        publish a truncated entry of our own making — what remains for
        verification is the rest of the threat model: a torn write on a
        non-atomic filesystem, bit rot, or a foreign file in the entry
        namespace, any of which would otherwise
        surface later as an unpickling error in the middle of a request.
        Verification at service startup converts that latent failure into
        a counted miss: each entry's pickle is loaded once and failures
        are unlinked.  Emits ``cache.verify_dropped`` and a
        ``cache_verified`` event so dashboards see store health.
        """
        dropped = 0
        checked = 0
        for path in self._entries():
            try:
                blob = path.read_bytes()
            except OSError:
                continue  # raced with a concurrent eviction
            checked += 1
            try:
                payload = pickle.loads(blob)
                if not isinstance(payload, dict):
                    raise ValueError("entry payload is not a dict")
            except Exception:
                path.unlink(missing_ok=True)
                dropped += 1
        if self.max_bytes is not None:
            with self._lock:
                self._approx_bytes = self.total_bytes()
        if dropped:
            obs.count("cache.verify_dropped", dropped)
        obs.event("cache_verified", entries=checked, dropped=dropped)
        return dropped

    # -- shard exchange -----------------------------------------------------

    def merge_from(self, shard_dir: str | os.PathLike) -> int:
        """Fold a shard's delta directory into this store and remove it.

        The move is per-entry ``os.replace`` — atomic, last-write-wins, and
        safe because keys are content addresses (two shards writing one key
        wrote identical payloads) — with a copy-into-temp fallback when the
        delta lives on a different filesystem (a remote-shipped delta
        unpacked under ``/tmp``).  Entries larger than ``max_bytes`` are
        dropped instead of merged, mirroring ``_write``'s skip: folding one
        in would evict the whole warm store and then the entry itself.
        Merged entries arrive with fresh mtimes, so a just-merged artifact
        is the *newest* under LRU; the budget is re-applied afterwards so
        merged stores stay bounded.  Returns the number of entries merged.
        """
        shard_root = Path(shard_dir)
        merged = 0
        if shard_root.exists():
            for source in shard_root.glob("*/*.pkl"):
                if self.max_bytes is not None:
                    try:
                        oversized = source.stat().st_size > self.max_bytes
                    except OSError:
                        continue
                    if oversized:
                        source.unlink(missing_ok=True)
                        continue
                target = _entry_path(self.directory, source.stem)
                target.parent.mkdir(parents=True, exist_ok=True)
                try:
                    os.replace(source, target)
                except OSError:
                    # EXDEV and friends: stage a copy next to the target so
                    # the final replace stays atomic, then drop the source.
                    handle = tempfile.NamedTemporaryFile(
                        dir=target.parent, prefix=f".{source.stem[:8]}-", delete=False
                    )
                    handle.close()
                    shutil.copy2(source, handle.name)
                    os.replace(handle.name, target)
                    source.unlink(missing_ok=True)
                try:
                    os.utime(target)
                except OSError:
                    pass
                merged += 1
            shutil.rmtree(shard_root, ignore_errors=True)
        self._evict_to_budget()
        return merged


class ShardDiskCache(DiskCache):
    """One shard's view of a sharded run's artifact store.

    The sharded execution contract ships two directories per shard: a
    read-only *base* (the coordinator's warm store, possibly copied to a
    remote host) and the shard's own *delta* directory that travels back.
    Reads check the delta first and fall through to the base; writes land
    only in the delta — the base is never mutated by a shard, which is
    what makes the directory pair a host-agnostic wire format.  The
    coordinator folds completed deltas in with :meth:`DiskCache.merge_from`.
    """

    name = "disk-shard"

    def __init__(
        self,
        directory: str | os.PathLike,
        base: str | os.PathLike | None = None,
    ) -> None:
        super().__init__(directory)
        self.base = Path(base) if base is not None else None

    def _read(self, key: str) -> bytes | None:
        blob = super()._read(key)
        if blob is None and self.base is not None:
            path = _entry_path(self.base, key)
            try:
                blob = path.read_bytes()
            except FileNotFoundError:
                return None
            try:
                # A fallthrough hit is a *use* of the base entry: refresh
                # its recency so a budgeted coordinator store does not
                # evict the working set its shards are actively reading.
                os.utime(path)
            except OSError:
                pass  # read-only or remote-copied base — the hit stands
        return blob


#: Scratch from a run that died more than this long ago is fair game for
#: the next run's startup sweep; any live run's scratch is far younger.
STALE_SCRATCH_SECONDS = 24 * 3600


def _sweep_stale_scratch(root: Path) -> None:
    """Remove scratch left behind by crashed runs (best effort).

    A SIGKILL/OOM mid-run skips ``shard_scratch``'s cleanup, and stale
    deltas are invisible to the entry globs that ``max_bytes`` budgets —
    without a sweep the store would grow without bound in exactly the
    directory the budget claims to bound.  Age-gating keeps the sweep safe
    for concurrent runs: their scratch is seconds old, not a day.
    """
    cutoff = time.time() - STALE_SCRATCH_SECONDS
    try:
        stale_candidates = list(root.iterdir())
    except OSError:
        return
    for candidate in stale_candidates:
        try:
            if candidate.is_dir() and candidate.stat().st_mtime < cutoff:
                shutil.rmtree(candidate, ignore_errors=True)
        except OSError:
            continue


@contextmanager
def shard_scratch(base: DiskCache | None, prefix: str):
    """Per-run scratch root for shard delta directories, cleaned on exit.

    The one definition of where shard deltas live: inside ``base``'s store
    under ``.shards/`` (outside the two-level entry namespace, so entry
    globs and byte accounting never see scratch) in a fresh tempdir, so
    concurrent sharded runs against one store cannot collide.  Yields a
    ``shard -> delta directory`` mapper — or a mapper returning ``None``
    for every shard when there is no base store to exchange against.
    Entry also sweeps day-old scratch that a crashed run left behind.
    """
    if base is None:
        yield lambda shard: None
        return
    root = base.directory / ".shards"
    root.mkdir(parents=True, exist_ok=True)
    _sweep_stale_scratch(root)
    scratch = Path(tempfile.mkdtemp(prefix=prefix, dir=root))
    try:
        yield lambda shard: scratch / f"shard-{shard}"
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


#: CLI ``--cache`` vocabulary -> constructor behavior (see :func:`make_cache`).
CACHE_KINDS = ("off", "memory", "disk")


def make_cache(
    kind: str,
    directory: str | os.PathLike | None = None,
    max_bytes: int | None = None,
) -> ArtifactCache | None:
    """Build a cache from the CLI vocabulary (``off`` -> ``None``).

    ``max_bytes`` applies to the disk backend only: it is the LRU eviction
    budget (the memory backend lives and dies with the process).
    """
    if max_bytes is not None and kind != "disk":
        # Silently dropping a budget would let "--cache-max-bytes" without
        # a disk cache masquerade as a bounded store.
        raise CompilationError("max_bytes budgets apply to the disk cache only")
    if kind == "off":
        return None
    if kind == "memory":
        return MemoryCache()
    if kind == "disk":
        if directory is None:
            raise CompilationError("a disk cache needs a directory (--cache-dir)")
        return DiskCache(directory, max_bytes=max_bytes)
    raise CompilationError(
        f"unknown cache kind {kind!r}; use one of: {', '.join(CACHE_KINDS)}"
    )


class CachePass(CompilerPass):
    """A memoizing wrapper around one cacheable pass.

    Presents the wrapped pass's ``name``/``requires``/``provides`` (so
    pipeline contracts, timing entries, and downstream consumers are
    oblivious), and on each run either replays the stored artifacts and
    metrics or executes the inner pass and stores what it produced.  The
    payload captures the pass's *metrics delta* alongside its artifacts so
    a hit reproduces ``ctx.metrics`` exactly as a miss would.
    """

    def __init__(self, inner: CompilerPass, cache: ArtifactCache) -> None:
        if isinstance(inner, CachePass):
            raise CompilationError(f"pass {inner.name!r} is already cached")
        if not inner.cacheable:
            raise CompilationError(
                f"pass {inner.name!r} is not cacheable (outputs are not a pure "
                "function of the cache key)"
            )
        self.inner = inner
        self.cache = cache
        self.name = inner.name
        self.requires = inner.requires
        self.provides = inner.provides
        self.rng_labels = inner.rng_labels

    def run(self, ctx: PassContext) -> None:
        key = self.cache.key_for(self.inner, ctx)
        payload = self.cache.fetch(key)
        if payload is not None:
            for artifact_name, value in payload["artifacts"].items():
                ctx.put(artifact_name, value)
            ctx.metrics.update(payload["metrics"])
            self._count(ctx, "cache_hits")
            # Event only, never a registry counter: ``cache.*`` counters
            # derive exclusively from record metrics at adoption time, so
            # all four runner backends reconcile to one source of truth.
            obs.event("cache_hit", stage=self.name, circuit=ctx.circuit.name)
            return
        obs.event("cache_miss", stage=self.name, circuit=ctx.circuit.name)
        before = dict(ctx.metrics)
        self.inner.run(ctx)
        delta = {
            name: value
            for name, value in ctx.metrics.items()
            if name not in before or before[name] != value
        }
        artifacts = {name: ctx.artifacts[name] for name in self.inner.provides}
        self.cache.store(key, {"artifacts": artifacts, "metrics": delta})
        self._count(ctx, "cache_misses")

    @staticmethod
    def _count(ctx: PassContext, counter: str) -> None:
        ctx.metrics[counter] = ctx.metrics.get(counter, 0) + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CachePass {self.name!r} via {self.cache.name}>"


def cache_summary(hits: int, misses: int) -> dict[str, Any]:
    """The one definition of hit/miss accounting every reporter shares."""
    lookups = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / lookups if lookups else 0.0,
    }


def uncached_passes(passes) -> tuple[CompilerPass, ...]:
    """Strip every :class:`CachePass` wrapper, restoring the bare chain."""
    return tuple(
        stage.inner if isinstance(stage, CachePass) else stage for stage in passes
    )


def cached_passes(
    passes, cache: ArtifactCache, only: tuple[str, ...] | None = None
) -> tuple[CompilerPass, ...]:
    """Wrap every cacheable pass of ``passes`` in a :class:`CachePass`.

    ``only`` restricts wrapping to the named passes (e.g. just the
    deterministic prefix, ``("translate", "offline-map")``); by default
    every pass that declares itself cacheable is wrapped.  Already-wrapped
    and non-cacheable passes are kept as-is.
    """
    wrapped = []
    for stage in passes:
        eligible = stage.cacheable and not isinstance(stage, CachePass)
        if eligible and (only is None or stage.name in only):
            wrapped.append(CachePass(stage, cache))
        else:
            wrapped.append(stage)
    return tuple(wrapped)
