"""Content-addressed artifact cache for the compiler pipeline.

Seed sweeps re-run the deterministic ``translate`` and ``offline-map``
stages once per seed even though only the online stages consume randomness.
This module removes that waste: a :class:`CachePass` wraps any cacheable
pass and memoizes its artifacts under a **content address** — a stable hash
of everything that feeds the stage:

* the circuit fingerprint (gate list, qubit count, name);
* the resolved hardware config and virtual size;
* the :class:`~repro.pipeline.settings.PipelineSettings`-derived options;
* for stochastic stages (``online-reshape``, ``baseline``), the derived
  child-stream seed the stage would draw from — the exact
  ``RandomStream.child(*labels, circuit.name)`` derivation, so two runs
  that would sample identical streams share one entry while different
  seeds never collide.

Deterministic stages omit the seed part, which is what lets a sweep over
the *seed axis* (same circuits, different online randomness) reuse the
translate/offline-map prefix across every rollout.

Two backends exist behind one interface: :class:`MemoryCache` (per-process
dict; serves the serial and thread runners) and :class:`DiskCache` (a
directory of pickle files with atomic writes; shareable across process
pools and across runs).  Both store *pickled bytes* and deserialize on
every hit, so a cached artifact is never aliased between compilations —
bit-identical results cannot be perturbed by downstream mutation.

Hit/miss counts are recorded twice: on the cache object (session totals,
for reports) and in each compilation's ``PassContext.metrics`` (per-job
provenance that flows into ``CompilationResult.metrics`` and from there
into ``ExperimentRecord.metrics``, surviving process-pool boundaries).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from pathlib import Path
from typing import Any

from repro.errors import CompilationError
from repro.pipeline.context import PassContext
from repro.pipeline.passes import CompilerPass

#: Bump when the key derivation or payload schema changes: stale entries
#: from older layouts must read as misses, never as wrong hits.
CACHE_SCHEMA_VERSION = 1


def circuit_fingerprint(circuit) -> str:
    """Stable content hash of a circuit (gates, qubit count, name).

    The name participates because downstream artifacts may embed it (and
    RNG streams derive from it); two same-content circuits with different
    names therefore address different entries — a lost sharing opportunity,
    never a correctness hazard.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(f"{circuit.num_qubits}|{circuit.name}".encode())
    for gate in circuit.gates:
        digest.update(repr((gate.name, gate.qubits, gate.params)).encode())
    return digest.hexdigest()


class ArtifactCache:
    """Backend-agnostic half of the cache: keys, counters, (de)serialization.

    Subclasses implement :meth:`_read` / :meth:`_write` over raw bytes.
    ``hits``/``misses`` are session-local totals (they do not persist and,
    for process pools, do not aggregate across workers — per-job counts in
    ``PassContext.metrics`` do).
    """

    name = "cache"

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()

    # -- key derivation -----------------------------------------------------

    def key_for(self, stage: CompilerPass, ctx: PassContext) -> str:
        """The content address of ``stage``'s output for ``ctx``."""
        parts = [
            f"schema={CACHE_SCHEMA_VERSION}",
            f"pass={stage.name}",
            f"circuit={circuit_fingerprint(ctx.circuit)}",
            f"config={ctx.config!r}",
            f"virtual={ctx.virtual_size}",
            f"options={sorted(ctx.options.items(), key=lambda kv: kv[0])!r}",
        ]
        if stage.rng_labels:
            # The exact child-seed the stage's generator would start from:
            # stochastic stages are deterministic *given* this value.
            child = ctx.stream.child(*stage.rng_labels, ctx.circuit.name)
            parts.append(f"stream={child.seed}")
        digest = hashlib.blake2b("\n".join(parts).encode(), digest_size=20)
        return digest.hexdigest()

    # -- payloads -----------------------------------------------------------

    def fetch(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key`` (a fresh deserialized copy), or None."""
        blob = self._read(key)
        with self._lock:
            if blob is None:
                self.misses += 1
            else:
                self.hits += 1
        if blob is None:
            return None
        return pickle.loads(blob)

    def store(self, key: str, payload: dict[str, Any]) -> None:
        """Persist ``payload`` under ``key`` (last write wins; same content)."""
        self._write(key, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def stats(self) -> dict[str, Any]:
        """Session totals, for reports and the CLI."""
        return {"backend": self.name, **cache_summary(self.hits, self.misses)}

    # -- backend hooks ------------------------------------------------------

    def _read(self, key: str) -> bytes | None:
        raise NotImplementedError

    def _write(self, key: str, blob: bytes) -> None:
        raise NotImplementedError

    # -- pickling (process pools) -------------------------------------------

    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        del state["_lock"]  # locks do not pickle; workers get their own
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class MemoryCache(ArtifactCache):
    """In-process backend: a dict of pickled payloads.

    Shared by reference within one process (serial and thread runners); a
    process pool pickles it *by value*, so workers see a snapshot and new
    entries do not flow back — use :class:`DiskCache` to share across
    processes.
    """

    name = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._store: dict[str, bytes] = {}

    def __len__(self) -> int:
        return len(self._store)

    def _read(self, key: str) -> bytes | None:
        with self._lock:
            return self._store.get(key)

    def _write(self, key: str, blob: bytes) -> None:
        with self._lock:
            self._store[key] = blob


class DiskCache(ArtifactCache):
    """On-disk backend: one pickle file per entry, fanned out by key prefix.

    Writes are atomic (temp file + ``os.replace``), so concurrent writers —
    threads or whole process-pool workers — can race on a key and the loser
    simply overwrites identical content.  Pickles by *path*, which is what
    makes one cache shareable across a process pool and across runs.
    """

    name = "disk"

    def __init__(self, directory: str | os.PathLike) -> None:
        super().__init__()
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*/*.pkl"))

    def _read(self, key: str) -> bytes | None:
        try:
            return self._path(key).read_bytes()
        except FileNotFoundError:
            return None

    def _write(self, key: str, blob: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            dir=path.parent, prefix=f".{key[:8]}-", delete=False
        )
        try:
            handle.write(blob)
            handle.close()
            os.replace(handle.name, path)
        except BaseException:
            handle.close()
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise


#: CLI ``--cache`` vocabulary -> constructor behavior (see :func:`make_cache`).
CACHE_KINDS = ("off", "memory", "disk")


def make_cache(
    kind: str, directory: str | os.PathLike | None = None
) -> ArtifactCache | None:
    """Build a cache from the CLI vocabulary (``off`` -> ``None``)."""
    if kind == "off":
        return None
    if kind == "memory":
        return MemoryCache()
    if kind == "disk":
        if directory is None:
            raise CompilationError("a disk cache needs a directory (--cache-dir)")
        return DiskCache(directory)
    raise CompilationError(
        f"unknown cache kind {kind!r}; use one of: {', '.join(CACHE_KINDS)}"
    )


class CachePass(CompilerPass):
    """A memoizing wrapper around one cacheable pass.

    Presents the wrapped pass's ``name``/``requires``/``provides`` (so
    pipeline contracts, timing entries, and downstream consumers are
    oblivious), and on each run either replays the stored artifacts and
    metrics or executes the inner pass and stores what it produced.  The
    payload captures the pass's *metrics delta* alongside its artifacts so
    a hit reproduces ``ctx.metrics`` exactly as a miss would.
    """

    def __init__(self, inner: CompilerPass, cache: ArtifactCache) -> None:
        if isinstance(inner, CachePass):
            raise CompilationError(f"pass {inner.name!r} is already cached")
        if not inner.cacheable:
            raise CompilationError(
                f"pass {inner.name!r} is not cacheable (outputs are not a pure "
                "function of the cache key)"
            )
        self.inner = inner
        self.cache = cache
        self.name = inner.name
        self.requires = inner.requires
        self.provides = inner.provides
        self.rng_labels = inner.rng_labels

    def run(self, ctx: PassContext) -> None:
        key = self.cache.key_for(self.inner, ctx)
        payload = self.cache.fetch(key)
        if payload is not None:
            for artifact_name, value in payload["artifacts"].items():
                ctx.put(artifact_name, value)
            ctx.metrics.update(payload["metrics"])
            self._count(ctx, "cache_hits")
            return
        before = dict(ctx.metrics)
        self.inner.run(ctx)
        delta = {
            name: value
            for name, value in ctx.metrics.items()
            if name not in before or before[name] != value
        }
        artifacts = {name: ctx.artifacts[name] for name in self.inner.provides}
        self.cache.store(key, {"artifacts": artifacts, "metrics": delta})
        self._count(ctx, "cache_misses")

    @staticmethod
    def _count(ctx: PassContext, counter: str) -> None:
        ctx.metrics[counter] = ctx.metrics.get(counter, 0) + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CachePass {self.name!r} via {self.cache.name}>"


def cache_summary(hits: int, misses: int) -> dict[str, Any]:
    """The one definition of hit/miss accounting every reporter shares."""
    lookups = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / lookups if lookups else 0.0,
    }


def uncached_passes(passes) -> tuple[CompilerPass, ...]:
    """Strip every :class:`CachePass` wrapper, restoring the bare chain."""
    return tuple(
        stage.inner if isinstance(stage, CachePass) else stage for stage in passes
    )


def cached_passes(
    passes, cache: ArtifactCache, only: tuple[str, ...] | None = None
) -> tuple[CompilerPass, ...]:
    """Wrap every cacheable pass of ``passes`` in a :class:`CachePass`.

    ``only`` restricts wrapping to the named passes (e.g. just the
    deterministic prefix, ``("translate", "offline-map")``); by default
    every pass that declares itself cacheable is wrapped.  Already-wrapped
    and non-cacheable passes are kept as-is.
    """
    wrapped = []
    for stage in passes:
        eligible = stage.cacheable and not isinstance(stage, CachePass)
        if eligible and (only is None or stage.name in only):
            wrapped.append(CachePass(stage, cache))
        else:
            wrapped.append(stage)
    return tuple(wrapped)
