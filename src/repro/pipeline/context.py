"""The shared state that flows through a compiler pipeline.

A :class:`PassContext` is created once per compilation and threaded through
every pass.  It carries the program being compiled, the resolved hardware
configuration, a dictionary of named *artifacts* (the measurement pattern,
the offline mapping, the reshape metrics, ...), deterministic child RNG
streams, and per-pass wall-clock timings.  Passes communicate exclusively
through artifacts — a pass never calls another pass — which is what makes
stages insertable, reorderable, and ablatable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.circuits.circuit import Circuit
from repro.errors import CompilationError
from repro.hardware.architecture import HardwareConfig
from repro.utils.rng import RandomStream


@dataclass(frozen=True)
class PassTiming:
    """Wall-clock seconds spent inside one pass."""

    name: str
    seconds: float


def aggregate_timings(timings: list[PassTiming]) -> dict[str, float]:
    """Pass name -> accumulated seconds, in execution order."""
    out: dict[str, float] = {}
    for timing in timings:
        out[timing.name] = out.get(timing.name, 0.0) + timing.seconds
    return out


@dataclass
class PassContext:
    """Everything a pass may read or produce during one compilation.

    ``artifacts`` is the inter-pass data bus: each pass declares which keys
    it ``requires`` and ``provides`` (see :class:`~repro.pipeline.passes.
    CompilerPass`), and the pipeline enforces the contract before running
    the pass.  ``options`` holds the knobs that are not part of the hardware
    config proper (occupancy limit, refresh period, RSL cap, ...).
    """

    circuit: Circuit
    config: HardwareConfig
    virtual_size: int
    stream: RandomStream
    options: dict[str, Any] = field(default_factory=dict)
    artifacts: dict[str, Any] = field(default_factory=dict)
    timings: list[PassTiming] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)

    # -- randomness ---------------------------------------------------------

    def rng(self, *labels: object) -> np.random.Generator:
        """Deterministic child generator for ``labels`` and this circuit.

        Matches the legacy driver's derivation (``stream.child(label,
        circuit.name)``) exactly, so pipeline compilations are bit-identical
        to the pre-pipeline compiler for the same seed.
        """
        return self.stream.child(*labels, self.circuit.name).generator

    # -- artifacts ----------------------------------------------------------

    def put(self, name: str, value: Any) -> None:
        self.artifacts[name] = value

    def get(self, name: str, default: Any = None) -> Any:
        return self.artifacts.get(name, default)

    def require(self, name: str) -> Any:
        """Fetch an artifact a pass depends on, failing loudly if absent."""
        try:
            return self.artifacts[name]
        except KeyError:
            raise CompilationError(
                f"artifact {name!r} is not available; did an earlier pass "
                f"run? (present: {sorted(self.artifacts)})"
            ) from None

    def option(self, name: str, default: Any = None) -> Any:
        return self.options.get(name, default)

    # -- timings ------------------------------------------------------------

    def record_timing(self, name: str, seconds: float) -> None:
        self.timings.append(PassTiming(name, seconds))

    def seconds_for(self, name: str) -> float:
        """Total seconds recorded for passes named ``name`` (0.0 if none)."""
        return sum(t.seconds for t in self.timings if t.name == name)

    @property
    def timings_by_pass(self) -> dict[str, float]:
        """Pass name -> accumulated seconds, in execution order."""
        return aggregate_timings(self.timings)
