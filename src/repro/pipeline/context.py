"""The shared state that flows through a compiler pipeline.

A :class:`PassContext` is created once per compilation and threaded through
every pass.  It carries the program being compiled, the resolved hardware
configuration, a dictionary of named *artifacts* (the measurement pattern,
the offline mapping, the reshape metrics, ...), deterministic child RNG
streams, and per-pass wall-clock timings.  Passes communicate exclusively
through artifacts — a pass never calls another pass — which is what makes
stages insertable, reorderable, and ablatable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.circuits.circuit import Circuit
from repro.errors import CompilationError
from repro.hardware.architecture import HardwareConfig
from repro.utils.rng import RandomStream


@dataclass(frozen=True)
class PassTiming:
    """Time spent inside one pass: wall clock, plus the CPU split.

    ``seconds`` is wall-clock time (``time.perf_counter``).
    ``cpu_seconds`` is the executing thread's CPU time over the same
    interval (``time.thread_time``); the split is what lets summed pass
    timings from thread/process runners be reconciled against wall time —
    under contention wall exceeds CPU, and the ratio says by how much.
    ``None`` marks a timing recorded by a pre-split producer.
    """

    name: str
    seconds: float
    cpu_seconds: float | None = None

    @property
    def wall_seconds(self) -> float:
        """Alias making the wall/CPU pairing explicit at use sites."""
        return self.seconds


def aggregate_timings(timings: list[PassTiming]) -> dict[str, float]:
    """Pass name -> accumulated wall seconds, in execution order."""
    out: dict[str, float] = {}
    for timing in timings:
        out[timing.name] = out.get(timing.name, 0.0) + timing.seconds
    return out


def aggregate_timings_split(timings: list[PassTiming]) -> dict[str, dict[str, float]]:
    """Pass name -> ``{"wall_seconds", "cpu_seconds"}``, in execution order.

    The serial/parallel diagnosis view: ``aggregate_timings`` folds the
    wall column only, which made thread/process sweeps look like they
    spent more pass time than the run's wall clock.  Missing CPU values
    (pre-split timings) count as 0 toward the CPU column.
    """
    out: dict[str, dict[str, float]] = {}
    for timing in timings:
        row = out.setdefault(timing.name, {"wall_seconds": 0.0, "cpu_seconds": 0.0})
        row["wall_seconds"] += timing.seconds
        row["cpu_seconds"] += timing.cpu_seconds or 0.0
    return out


@dataclass
class PassContext:
    """Everything a pass may read or produce during one compilation.

    ``artifacts`` is the inter-pass data bus: each pass declares which keys
    it ``requires`` and ``provides`` (see :class:`~repro.pipeline.passes.
    CompilerPass`), and the pipeline enforces the contract before running
    the pass.  ``options`` holds the knobs that are not part of the hardware
    config proper (occupancy limit, refresh period, RSL cap, ...).
    """

    circuit: Circuit
    config: HardwareConfig
    virtual_size: int
    stream: RandomStream
    options: dict[str, Any] = field(default_factory=dict)
    artifacts: dict[str, Any] = field(default_factory=dict)
    timings: list[PassTiming] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)
    #: Telemetry spans recorded during this compilation (JSON-ready dicts,
    #: see :mod:`repro.obs.trace`).  Out-of-band by contract: results carry
    #: them across process boundaries, but nothing may compute from them.
    spans: list[dict[str, Any]] = field(default_factory=list)

    # -- randomness ---------------------------------------------------------

    def rng(self, *labels: object) -> np.random.Generator:
        """Deterministic child generator for ``labels`` and this circuit.

        Matches the legacy driver's derivation (``stream.child(label,
        circuit.name)``) exactly, so pipeline compilations are bit-identical
        to the pre-pipeline compiler for the same seed.
        """
        return self.stream.child(*labels, self.circuit.name).generator

    # -- artifacts ----------------------------------------------------------

    def put(self, name: str, value: Any) -> None:
        self.artifacts[name] = value

    def get(self, name: str, default: Any = None) -> Any:
        return self.artifacts.get(name, default)

    def require(self, name: str) -> Any:
        """Fetch an artifact a pass depends on, failing loudly if absent."""
        try:
            return self.artifacts[name]
        except KeyError:
            raise CompilationError(
                f"artifact {name!r} is not available; did an earlier pass "
                f"run? (present: {sorted(self.artifacts)})"
            ) from None

    def option(self, name: str, default: Any = None) -> Any:
        return self.options.get(name, default)

    # -- timings ------------------------------------------------------------

    def record_timing(
        self, name: str, seconds: float, cpu_seconds: float | None = None
    ) -> None:
        self.timings.append(PassTiming(name, seconds, cpu_seconds))

    def seconds_for(self, name: str) -> float:
        """Total seconds recorded for passes named ``name`` (0.0 if none)."""
        return sum(t.seconds for t in self.timings if t.name == name)

    @property
    def timings_by_pass(self) -> dict[str, float]:
        """Pass name -> accumulated seconds, in execution order."""
        return aggregate_timings(self.timings)

    @property
    def timings_split_by_pass(self) -> dict[str, dict[str, float]]:
        """Pass name -> wall/CPU second split, in execution order."""
        return aggregate_timings_split(self.timings)
