"""The compilation result record (moved here from ``repro.compiler.driver``).

Kept import-compatible: ``repro.compiler`` re-exports it, so downstream code
can keep importing from either place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import Instruction
from repro.offline.mapper import MappingResult
from repro.online.timelike import ReshapeMetrics
from repro.pipeline.context import (
    PassTiming,
    aggregate_timings,
    aggregate_timings_split,
)


@dataclass
class CompilationResult:
    """Everything measured for one program compilation."""

    circuit_name: str
    num_qubits: int
    rsl_count: int
    fusion_count: int
    logical_layers: int
    mapping: MappingResult
    reshape: ReshapeMetrics
    offline_seconds: float
    online_seconds: float
    instructions: list[Instruction] = field(default_factory=list, repr=False)
    pass_timings: list[PassTiming] = field(default_factory=list, repr=False)
    #: The compilation's ``PassContext.metrics`` (logical layers mapped,
    #: peak memory, cache hit/miss counts, ...) — the provenance channel the
    #: experiment layer surfaces into ``ExperimentRecord.metrics``.
    metrics: dict = field(default_factory=dict, repr=False)
    #: Telemetry spans recorded during this compilation (empty unless the
    #: pipeline ran with ``telemetry=True``).  Out-of-band by contract:
    #: consumers adopt them into a session trace, nothing computes from
    #: them — results are identical with or without.
    spans: list = field(default_factory=list, repr=False)

    @property
    def pl_ratio(self) -> float:
        return self.reshape.pl_ratio

    @property
    def online_seconds_per_rsl(self) -> float:
        if self.rsl_count == 0:
            return float("nan")
        return self.online_seconds / self.rsl_count

    @property
    def timings_by_pass(self) -> dict[str, float]:
        """Pass name -> seconds, for reports and the CLI's ``--json``."""
        return aggregate_timings(self.pass_timings)

    @property
    def timings_split_by_pass(self) -> dict[str, dict[str, float]]:
        """Pass name -> ``{"wall_seconds", "cpu_seconds"}`` split."""
        return aggregate_timings_split(self.pass_timings)
