"""Compilation settings shared by every pass and the sizing heuristics.

:class:`PipelineSettings` is the immutable bag of knobs that used to live as
attributes on the monolithic ``OnePercCompiler``; a :class:`~repro.pipeline.
pipeline.Pipeline` pairs one settings object with a pass list and stamps out
a fresh :class:`~repro.pipeline.context.PassContext` per (circuit, seed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baseline.retry import DEFAULT_RSL_CAP
from repro.circuits.circuit import Circuit
from repro.graphstate.resource import ResourceStateSpec
from repro.hardware.architecture import HardwareConfig
from repro.pipeline.context import PassContext
from repro.utils.rng import RandomStream


#: Table 1's virtual-hardware sizing: one lattice column per circuit qubit,
#: arranged square (4 qubits -> 2x2, 25 -> 5x5, ...).
def virtual_size_for(num_qubits: int) -> int:
    return max(2, math.isqrt(num_qubits) + (0 if math.isqrt(num_qubits) ** 2 == num_qubits else 1))


#: Table 1's RSL sizing: the renormalized lattice must reach the virtual
#: hardware size, so the RSL side is ``node_side * virtual_side``; the paper
#: uses 12x at p = 0.90 and 24x at p = 0.75.
def rsl_size_for(num_qubits: int, fusion_success_rate: float, node_side: int | None = None) -> int:
    if node_side is None:
        node_side = 12 if fusion_success_rate >= 0.85 else 24
    return node_side * virtual_size_for(num_qubits)


@dataclass(frozen=True)
class PipelineSettings:
    """Every knob of one compilation, resolved per circuit at run time.

    ``rsl_size``/``virtual_size`` pin the lattice sizes outright; when they
    are ``None`` the Table 1 heuristics apply, with ``node_side`` overriding
    the per-rate default multiplier (so one settings object can serve a
    whole sweep of program sizes, as the experiment drivers need).
    """

    fusion_success_rate: float = 0.75
    resource_state_size: int = 4
    rsl_size: int | None = None
    virtual_size: int | None = None
    node_side: int | None = None
    occupancy_limit: float = 0.25
    refresh_every: int | None = None
    memory_budget_bytes: int | None = None
    bytes_per_node_layer: int | None = None
    photon_loss_rate: float = 0.0
    max_rsl: int = DEFAULT_RSL_CAP
    emit_instructions: bool = False
    pathfind: str = "vector"
    #: Pattern-rewrite pass gate: "on" puts RewritePass in the default
    #: chain after translate, "off" is the unrewritten byte-identity
    #: oracle.  Rides in the context options, so rewritten and unrewritten
    #: compilations never share artifact-cache entries.
    rewrite: str = "on"

    def hardware_for(self, num_qubits: int) -> tuple[HardwareConfig, int]:
        """Resolve the hardware config and virtual size for a program."""
        virtual = self.virtual_size or virtual_size_for(num_qubits)
        rsl = self.rsl_size or rsl_size_for(
            num_qubits, self.fusion_success_rate, node_side=self.node_side
        )
        config = HardwareConfig(
            rsl_size=rsl,
            resource_state=ResourceStateSpec(self.resource_state_size),
            fusion_success_rate=self.fusion_success_rate,
            photon_loss_rate=self.photon_loss_rate,
        )
        return config, virtual

    def context_for(self, circuit: Circuit, seed: int | None = None) -> PassContext:
        """A fresh context for compiling ``circuit`` under these settings."""
        config, virtual = self.hardware_for(circuit.num_qubits)
        return PassContext(
            circuit=circuit,
            config=config,
            virtual_size=virtual,
            stream=RandomStream(seed),
            options={
                "occupancy_limit": self.occupancy_limit,
                "refresh_every": self.refresh_every,
                "memory_budget_bytes": self.memory_budget_bytes,
                "bytes_per_node_layer": self.bytes_per_node_layer,
                "max_rsl": self.max_rsl,
                "emit_instructions": self.emit_instructions,
                "pathfind": self.pathfind,
                "rewrite": self.rewrite,
            },
        )
