"""The concrete passes of the Fig. 2 flow, as composable pipeline stages.

Each pass reads and writes named artifacts on the shared
:class:`~repro.pipeline.context.PassContext`; the ``requires``/``provides``
tuples are the machine-checked contract the pipeline validates before the
pass runs, which turns mis-ordered stages into immediate, explicit errors
instead of attribute crashes deep inside a stage.
"""

from __future__ import annotations

from repro.errors import CompilationError
from repro.pipeline.context import PassContext


class CompilerPass:
    """Base class: a named transformation of the pass context.

    Subclasses set ``name`` (used for timing entries and diagnostics),
    ``requires`` (artifact keys that must exist before the pass runs) and
    ``provides`` (keys the pass is expected to create), and implement
    :meth:`run`.

    Two further attributes describe a pass to the artifact cache
    (:mod:`repro.pipeline.cache`): ``cacheable`` declares that the pass's
    artifacts are a pure function of the cache key, and ``rng_labels``
    names the child random streams the pass consumes (empty for
    deterministic passes) — the cache folds the derived stream seed into
    the key so stochastic stages memoize per (inputs, seed) while
    deterministic ones share entries across the whole seed axis.
    """

    name: str = "pass"
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ()
    cacheable: bool = False
    rng_labels: tuple[str, ...] = ()

    def run(self, ctx: PassContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class TranslatePass(CompilerPass):
    """Circuit -> {J, CZ} -> measurement pattern (Section 3)."""

    name = "translate"
    provides = ("pattern",)
    cacheable = True

    def run(self, ctx: PassContext) -> None:
        from repro.mbqc.translate import translate_circuit

        ctx.put("pattern", translate_circuit(ctx.circuit))


class OfflineMapPass(CompilerPass):
    """Measurement pattern -> FlexLattice IR mapping (Section 6.2)."""

    name = "offline-map"
    requires = ("pattern",)
    provides = ("mapping",)
    cacheable = True

    def run(self, ctx: PassContext) -> None:
        from repro.offline.mapper import OfflineMapper

        kwargs = dict(
            width=ctx.virtual_size,
            occupancy_limit=ctx.option("occupancy_limit", 0.25),
            refresh_every=ctx.option("refresh_every"),
            memory_budget_bytes=ctx.option("memory_budget_bytes"),
        )
        bytes_per_node_layer = ctx.option("bytes_per_node_layer")
        if bytes_per_node_layer is not None:
            kwargs["bytes_per_node_layer"] = bytes_per_node_layer
        mapping = OfflineMapper(**kwargs).map_pattern(ctx.require("pattern"))
        ctx.put("mapping", mapping)
        ctx.metrics["logical_layers_mapped"] = mapping.layer_count
        ctx.metrics["peak_memory_bytes"] = mapping.peak_memory_bytes


class LowerIRPass(CompilerPass):
    """FlexLattice IR -> intermediate-level instruction stream (Section 6.3).

    Lowering is skipped (an empty stream is recorded) unless the
    ``emit_instructions`` option asks for it — the instruction list is
    bulky and only the hardware-facing consumers need it.
    """

    name = "lower-ir"
    requires = ("mapping",)
    provides = ("instructions",)

    def run(self, ctx: PassContext) -> None:
        from repro.ir.instructions import lower_ir

        if ctx.option("emit_instructions", False):
            ctx.put("instructions", lower_ir(ctx.require("mapping").ir))
        else:
            ctx.put("instructions", [])


class OnlineReshapePass(CompilerPass):
    """Streamed RSLs -> logical layers via percolation reshaping (Section 5)."""

    name = "online-reshape"
    requires = ("mapping",)
    provides = ("reshape",)
    cacheable = True
    rng_labels = ("online",)

    def run(self, ctx: PassContext) -> None:
        from repro.online.timelike import OnlineReshaper

        reshaper = OnlineReshaper(
            ctx.config,
            virtual_size=ctx.virtual_size,
            rng=ctx.rng("online"),
            max_rsl=ctx.option("max_rsl", 10**6),
            pathfind=ctx.option("pathfind", "vector"),
        )
        reshape = reshaper.run(ctx.require("mapping").demands)
        ctx.put("reshape", reshape)
        ctx.metrics["rsl_count"] = reshape.rsl_consumed
        ctx.metrics["fusion_count"] = reshape.fusions


class BaselinePass(CompilerPass):
    """OneQ + repeat-until-success on the same hardware (Section 7.1)."""

    name = "baseline"
    requires = ("pattern",)
    provides = ("baseline",)
    cacheable = True
    rng_labels = ("baseline",)

    def run(self, ctx: PassContext) -> None:
        from repro.baseline.oneq import plan_oneq
        from repro.baseline.retry import RepeatUntilSuccessExecutor

        try:
            plan = plan_oneq(ctx.require("pattern"), ctx.config)
        except Exception as exc:  # noqa: BLE001 - surfaced as compilation failure
            raise CompilationError(
                f"OneQ could not embed {ctx.circuit.name}: {exc}"
            ) from exc
        executor = RepeatUntilSuccessExecutor(
            ctx.config.effective_fusion_rate,
            rsl_cap=ctx.option("max_rsl", 10**6),
            rng=ctx.rng("baseline"),
        )
        ctx.put("baseline", executor.run(plan))
