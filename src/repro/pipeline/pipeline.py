"""The pass pipeline: ordered stages over a shared context, plus batch runs.

``Pipeline`` is the composition point of the compiler: a
:class:`~repro.pipeline.settings.PipelineSettings` (the knobs), an ordered
pass list (the stages), and the machinery that stamps out one
:class:`~repro.pipeline.context.PassContext` per compilation, validates each
pass's artifact contract, and times every stage.  ``compile_many`` fans a
sweep of (circuit, seed) jobs over a thread or process pool; determinism is
preserved because each job derives its own RNG streams from its seed and
circuit name — execution order never feeds the randomness.
"""

from __future__ import annotations

import copy
import functools
import time
from collections.abc import Iterable, Sequence
from concurrent.futures import as_completed

from repro import obs
from repro.baseline.retry import BaselineResult
from repro.circuits.circuit import Circuit
from repro.errors import CompilationError
from repro.pipeline.context import PassContext
from repro.pipeline.passes import (
    BaselinePass,
    CompilerPass,
    LowerIRPass,
    OfflineMapPass,
    OnlineReshapePass,
    TranslatePass,
)
from repro.pipeline.result import CompilationResult
from repro.pipeline.settings import PipelineSettings


def _compile_one(
    pipeline: "Pipeline", baseline: bool, circuit: Circuit, seed: int | None
):
    """One batch job (module-level so process pools can pickle it).

    Batch failures must name their job: a sweep of dozens of circuits is
    undebuggable from a bare per-pass exception.
    """
    one = pipeline.compile_baseline if baseline else pipeline.compile
    try:
        return one(circuit, seed)
    except Exception as exc:
        raise CompilationError(f"compiling {circuit.name}: {exc}") from exc


def _compile_chunk(
    pipeline: "Pipeline", baseline: bool, items: list[tuple[int, Circuit, int | None]]
):
    """One warm-pool dispatch quantum: a contiguous slice compiled in-worker.

    Module-level so process pools pickle it by reference.  One chunk costs
    one submit/pickle round trip however many jobs it carries — the lever
    that makes pool backends profitable for short jobs (see
    :mod:`repro.experiments.pool`).
    """
    return [
        (index, _compile_one(pipeline, baseline, circuit, seed))
        for index, circuit, seed in items
    ]


def _compile_shard(
    pipeline: "Pipeline", baseline: bool, items: list[tuple[int, Circuit, int | None]]
):
    """One sharded-backend task: compile a slice of the batch serially.

    Module-level (process pools pickle it by reference) and self-contained:
    the pipeline it receives is already bound to the shard's own cache
    view.  Flowing back are the indexed results plus the shard cache's
    session counters — the coordinator folds them into its own cache
    object so sharded batch runs report complete hit/miss totals.
    """
    pairs = [
        (index, _compile_one(pipeline, baseline, circuit, seed))
        for index, circuit, seed in items
    ]
    stats = pipeline.cache.stats() if pipeline.cache is not None else None
    return pairs, stats


def default_passes(rewrite: str = "on") -> tuple[CompilerPass, ...]:
    """The paper's Fig. 2 flow as a pass chain.

    ``rewrite`` gates the pattern-rewrite optimization in the slot between
    translate and offline-map: ``"on"`` (the default) contracts zero-angle
    pairs before mapping, ``"off"`` is the unrewritten byte-identity
    oracle — the same fast-default/oracle pairing as ``pathfind``.
    """
    # Lazy import: repro.passes is built on top of this module.
    from repro.passes.rewrite import REWRITES, RewritePass

    if rewrite not in REWRITES:
        raise CompilationError(
            f"unknown rewrite mode {rewrite!r}; use one of: {', '.join(REWRITES)}"
        )
    head: tuple[CompilerPass, ...] = (TranslatePass(),)
    if rewrite == "on":
        head += (RewritePass(),)
    return (*head, OfflineMapPass(), LowerIRPass(), OnlineReshapePass())


def baseline_passes() -> tuple[CompilerPass, ...]:
    """The OneQ repeat-until-success comparison flow."""
    return (TranslatePass(), BaselinePass())


class PassInsertionError(CompilationError):
    """A pass cannot join a chain at the requested slot.

    Structured for tooling: ``kind`` is ``"collision"`` (the new pass
    provides an artifact another pass already provides, without requiring
    it — i.e. it is not an in-place refinement), ``"unsatisfied"`` (a
    required artifact has no earlier provider), or ``"anchor"`` (the
    insertion point itself is invalid).  ``new_pass``/``existing_pass``
    name both sides of the conflict and ``key`` the artifact at issue.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str,
        new_pass: str,
        existing_pass: str | None = None,
        key: str | None = None,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.new_pass = new_pass
        self.existing_pass = existing_pass
        self.key = key


def check_chain(passes: Sequence[CompilerPass]) -> None:
    """Statically validate a pass chain's requires/provides contract.

    The per-run checks in :meth:`Pipeline.run` catch violations only when
    the offending pass executes; this walks the declared contract up front
    so a bad insertion fails at :meth:`Pipeline.insert_pass` time, naming
    both passes involved.  Two rules:

    * every ``requires`` key must have a provider strictly earlier in the
      chain;
    * a ``provides`` key already provided earlier is a collision *unless*
      the later pass also requires it — the in-place-refinement shape
      (e.g. rewrite: ``pattern -> pattern``).
    """
    chain = list(passes)
    available: dict[str, str] = {}
    for index, stage in enumerate(chain):
        for key in stage.requires:
            if key not in available:
                provider = next(
                    (
                        later.name
                        for later in chain[index + 1 :]
                        if key in later.provides
                    ),
                    None,
                )
                if provider is not None:
                    message = (
                        f"pass {stage.name!r} requires {key!r}, which is "
                        f"only provided later by pass {provider!r}"
                    )
                else:
                    message = (
                        f"pass {stage.name!r} requires {key!r}, which no "
                        "pass in the chain provides"
                    )
                raise PassInsertionError(
                    message,
                    kind="unsatisfied",
                    new_pass=stage.name,
                    existing_pass=provider,
                    key=key,
                )
        for key in stage.provides:
            owner = available.get(key)
            if owner is not None and key not in stage.requires:
                raise PassInsertionError(
                    f"pass {stage.name!r} provides {key!r}, which pass "
                    f"{owner!r} already provides; an in-place refinement "
                    f"must also require {key!r}",
                    kind="collision",
                    new_pass=stage.name,
                    existing_pass=owner,
                    key=key,
                )
            available[key] = stage.name


class Pipeline:
    """A compiler: settings + an ordered pass chain.

    The default chain reproduces the end-to-end OnePerc compiler; custom
    chains ablate or extend it (e.g. the memory experiments run only
    ``TranslatePass -> OfflineMapPass``).
    """

    def __init__(
        self,
        settings: PipelineSettings | None = None,
        passes: Sequence[CompilerPass] | None = None,
        seed: int | None = None,
        cache=None,
        cache_only: tuple[str, ...] | None = None,
        telemetry: bool = False,
    ) -> None:
        self.settings = settings or PipelineSettings()
        base: tuple[CompilerPass, ...] = (
            tuple(passes)
            if passes is not None
            else default_passes(self.settings.rewrite)
        )
        self.cache = cache
        self.cache_only = cache_only
        if cache is not None:
            from repro.pipeline.cache import cached_passes

            base = cached_passes(base, cache, cache_only)
        self.passes = base
        self.seed = seed
        # Collection intent, not a handle: a bool survives pickling into
        # process-pool workers, where the parent's session is invisible.
        # The recorded spans ride back on the result (``ctx.spans``).
        self.telemetry = telemetry

    # -- core execution -----------------------------------------------------

    def run(self, ctx: PassContext) -> PassContext:
        """Run every pass over ``ctx``, enforcing contracts and timing each.

        With ``telemetry`` enabled — explicitly, or implicitly because a
        telemetry session is active in this process — the loop additionally
        records one ``pass:<name>`` span per stage under a ``compile`` root,
        measured from the *same* clock reads that feed
        ``PassContext.timings``, so trace summaries reconcile with pass
        timings exactly.  Timings and artifacts are identical either way:
        spans are out-of-band.
        """
        if self.telemetry or obs.active() is not None:
            return self._run_traced(ctx)
        for stage in self.passes:
            self._check_requires(stage, ctx)
            cpu0 = time.thread_time()
            start = time.perf_counter()
            stage.run(ctx)
            ctx.record_timing(
                stage.name,
                time.perf_counter() - start,
                time.thread_time() - cpu0,
            )
            self._check_provides(stage, ctx)
        return ctx

    def _run_traced(self, ctx: PassContext) -> PassContext:
        """The ``run`` loop with span recording around every stage."""
        tracer = obs.Tracer()
        ctx.spans = tracer.spans  # spans land directly in the context
        with obs.push_tracer(tracer):
            with tracer.span(
                "compile",
                circuit=ctx.circuit.name,
                qubits=ctx.circuit.num_qubits,
            ):
                for stage in self.passes:
                    self._check_requires(stage, ctx)
                    with tracer.span(f"pass:{stage.name}") as sp:
                        stage.run(ctx)
                    ctx.record_timing(stage.name, sp.wall, sp.cpu)
                    self._check_provides(stage, ctx)
        return ctx

    @staticmethod
    def _check_requires(stage: CompilerPass, ctx: PassContext) -> None:
        missing = [key for key in stage.requires if key not in ctx.artifacts]
        if missing:
            raise CompilationError(
                f"pass {stage.name!r} requires artifacts {missing} that no "
                f"earlier pass provided (present: {sorted(ctx.artifacts)})"
            )

    @staticmethod
    def _check_provides(stage: CompilerPass, ctx: PassContext) -> None:
        for key in stage.provides:
            if key not in ctx.artifacts:
                raise CompilationError(
                    f"pass {stage.name!r} promised artifact {key!r} but "
                    "did not produce it"
                )

    def run_circuit(self, circuit: Circuit, seed: int | None = None) -> PassContext:
        """Build a fresh context for ``circuit`` and run the chain over it."""
        ctx = self.settings.context_for(circuit, self._seed_for(seed))
        return self.run(ctx)

    def _seed_for(self, seed: int | None) -> int | None:
        return self.seed if seed is None else seed

    def with_cache(
        self, cache, only: tuple[str, ...] | None = None
    ) -> "Pipeline":
        """This pipeline with every cacheable pass wrapped in a ``CachePass``.

        ``only`` limits wrapping to the named passes (e.g. just the
        deterministic prefix ``("translate", "offline-map")``).  The
        returned pipeline shares ``cache``, so every compilation it (or a
        sibling) runs reads and feeds the same artifact store; a ``cache``
        of ``None`` returns an equivalent uncached pipeline.  Existing
        wrappers are stripped first, so rebinding an already-cached
        pipeline to a different store (or to none) takes full effect.
        """
        from repro.pipeline.cache import uncached_passes

        return Pipeline(
            self.settings,
            uncached_passes(self.passes),
            self.seed,
            cache,
            only,
            telemetry=self.telemetry,
        )

    def insert_pass(
        self,
        stage: CompilerPass,
        *,
        after: str | None = None,
        before: str | None = None,
    ) -> "Pipeline":
        """A new pipeline with ``stage`` inserted into the chain.

        ``after``/``before`` name an existing pass as the anchor (exactly
        one may be given; with neither, the stage is appended).  The
        resulting chain is validated by :func:`check_chain` *at insertion
        time*, so an unsatisfied requirement or a provides collision
        raises a structured :class:`PassInsertionError` naming both passes
        instead of failing mid-compilation.  Cache wrappers are stripped
        before inserting and rebuilt by the new pipeline's constructor, so
        an inserted cacheable pass is wrapped like any other.
        """
        from repro.pipeline.cache import uncached_passes

        if after is not None and before is not None:
            raise PassInsertionError(
                f"inserting {stage.name!r}: give either after= or before=, "
                "not both",
                kind="anchor",
                new_pass=stage.name,
            )
        chain = list(uncached_passes(self.passes))
        names = [existing.name for existing in chain]
        if after is None and before is None:
            index = len(chain)
        else:
            anchor = after if after is not None else before
            if anchor not in names:
                raise PassInsertionError(
                    f"inserting {stage.name!r}: no pass named {anchor!r} "
                    f"in the chain ({', '.join(names)})",
                    kind="anchor",
                    new_pass=stage.name,
                    existing_pass=anchor,
                )
            index = names.index(anchor) + (1 if after is not None else 0)
        chain.insert(index, stage)
        check_chain(chain)
        return Pipeline(
            self.settings,
            chain,
            self.seed,
            self.cache,
            self.cache_only,
            telemetry=self.telemetry,
        )

    # -- one-shot entry points ---------------------------------------------

    def compile(self, circuit: Circuit, seed: int | None = None) -> CompilationResult:
        """Full OnePerc compilation of ``circuit``; see the paper's Fig. 2."""
        ctx = self.run_circuit(circuit, seed)
        reshape = ctx.require("reshape")
        return CompilationResult(
            circuit_name=circuit.name,
            num_qubits=circuit.num_qubits,
            rsl_count=reshape.rsl_consumed,
            fusion_count=reshape.fusions,
            logical_layers=reshape.logical_layers,
            mapping=ctx.require("mapping"),
            reshape=reshape,
            offline_seconds=ctx.seconds_for(OfflineMapPass.name),
            online_seconds=ctx.seconds_for(OnlineReshapePass.name),
            instructions=ctx.get("instructions", []),
            pass_timings=list(ctx.timings),
            metrics=dict(ctx.metrics),
            spans=list(ctx.spans),
        )

    def compile_baseline(self, circuit: Circuit, seed: int | None = None) -> BaselineResult:
        """OneQ + repeat-until-success on the same hardware (Section 7.1)."""
        ctx = self.settings.context_for(circuit, self._seed_for(seed))
        Pipeline(
            self.settings, baseline_passes(), cache=self.cache,
            cache_only=self.cache_only, telemetry=self.telemetry,
        ).run(ctx)
        result = ctx.require("baseline")
        result.metrics = dict(ctx.metrics)
        result.spans = list(ctx.spans)
        return result

    # -- batch execution ----------------------------------------------------

    def compile_many(
        self,
        circuits: Iterable[Circuit],
        seeds: int | Sequence[int | None] | None = None,
        max_workers: int | None = None,
        baseline: bool = False,
        backend: str | None = None,
        executor=None,
        as_futures: bool = False,
        cache=None,
        shards: int | None = None,
        chunk_size: int | None = None,
    ) -> list[CompilationResult] | list[BaselineResult] | list:
        """Compile a batch of circuits, optionally across a worker pool.

        ``seeds`` is either one root seed shared by every job (each job's
        streams stay independent because they are keyed by circuit name) or
        a per-circuit sequence.  ``backend`` selects the execution strategy:
        ``"serial"``, ``"thread"``, ``"process"`` (contexts are
        self-contained and picklable, so the process pool is a pure runner
        swap), or ``"sharded"`` — the batch is deterministically
        partitioned into ``shards`` slices (round-robin by batch index,
        default ``max_workers`` or 2), each compiled serially in its own
        subprocess; with a ``DiskCache`` on the pipeline, every shard reads
        through the shared store, writes a private delta directory, and the
        deltas merge back as shards finish (the sharded runner's artifact
        exchange, at the batch level); ``None`` keeps the legacy inference
        — a thread pool when ``max_workers > 1``, serial otherwise.  A caller managing many
        batches can pass a live ``executor``
        instead; with ``as_futures=True`` the batch is submitted without
        blocking and the input-ordered ``Future`` list comes back, letting
        the caller keep the pool saturated across batches.  The thread and
        process backends draw their executor from the **warm pool
        registry** (:mod:`repro.experiments.pool`) — one pool per worker
        count, created on first use and reused by every later batch, so
        startup is paid once per process — and submit jobs in contiguous
        chunks (auto ~``len(jobs)/(4*workers)`` apiece, or ``chunk_size``)
        to amortize per-submit pickling.  Results come
        back in input order and are identical for any backend, pool,
        ``max_workers``, and chunk size — the per-job RNG derivation never
        sees the scheduler.  ``cache`` (an :class:`~repro.pipeline.cache.
        ArtifactCache`) makes every job of the batch share one artifact
        store, so a sweep over the seed axis reuses the deterministic
        translate/offline-map prefix instead of recompiling it per seed;
        results are bit-identical with the cache on or off.
        """
        if not self.telemetry and obs.active() is not None:
            # A session is collecting: opt the whole batch in so spans come
            # back on every result, wherever the job runs.  A shallow copy
            # keeps the caller's pipeline (and its cache binding) untouched.
            clone = copy.copy(self)
            clone.telemetry = True
            return clone.compile_many(
                circuits,
                seeds=seeds,
                max_workers=max_workers,
                baseline=baseline,
                backend=backend,
                executor=executor,
                as_futures=as_futures,
                cache=cache,
                shards=shards,
                chunk_size=chunk_size,
            )
        if cache is not None and cache is not self.cache:
            if self.cache is not None:
                raise CompilationError(
                    "compile_many cache conflicts with the pipeline's own cache"
                )
            return self.with_cache(cache).compile_many(
                circuits,
                seeds=seeds,
                max_workers=max_workers,
                baseline=baseline,
                backend=backend,
                executor=executor,
                as_futures=as_futures,
                shards=shards,
                chunk_size=chunk_size,
            )
        jobs = list(circuits)
        if seeds is None or isinstance(seeds, int):
            job_seeds: list[int | None] = [seeds] * len(jobs)  # type: ignore[list-item]
        else:
            job_seeds = list(seeds)
            if len(job_seeds) != len(jobs):
                raise CompilationError(
                    f"{len(jobs)} circuits but {len(job_seeds)} seeds supplied"
                )
        runner = functools.partial(_compile_one, self, baseline)
        if as_futures and executor is None:
            raise CompilationError("as_futures=True requires an executor")
        if shards is not None and shards < 1:
            raise CompilationError(f"shard count must be >= 1, got {shards}")
        if chunk_size is not None and chunk_size < 1:
            raise CompilationError(f"chunk size must be >= 1, got {chunk_size}")
        if executor is not None and (
            backend is not None
            or max_workers is not None
            or shards is not None
            or chunk_size is not None
        ):
            raise CompilationError(
                "executor conflicts with backend/max_workers/shards/"
                "chunk_size: the supplied pool already fixes the execution "
                "strategy"
            )
        if executor is not None:
            futures = [
                executor.submit(runner, circuit, seed)
                for circuit, seed in zip(jobs, job_seeds)
            ]
            if as_futures:
                return futures
            return [future.result() for future in futures]
        if backend is None:
            backend = "thread" if max_workers is not None and max_workers > 1 else "serial"
        if shards is not None and backend != "sharded":
            raise CompilationError(
                f"shards only applies to backend='sharded', not {backend!r}"
            )
        if chunk_size is not None and backend not in ("thread", "process"):
            raise CompilationError(
                f"chunk_size only applies to the pool backends "
                f"('thread', 'process'), not {backend!r}"
            )
        if backend == "sharded":
            return self._compile_sharded(
                jobs, job_seeds, baseline, shards or max_workers or 2
            )
        if backend == "serial":
            return [runner(circuit, seed) for circuit, seed in zip(jobs, job_seeds)]
        if backend not in ("thread", "process"):
            raise CompilationError(
                f"unknown compile_many backend {backend!r}; "
                "use 'serial', 'thread', 'process', or 'sharded'"
            )
        # Lazy import: repro.experiments.pool lives in a package whose
        # __init__ imports this module — importing it at module scope would
        # be circular.  The registry hands back a warm, shared executor.
        from repro.experiments.pool import (
            chunk_size_for,
            chunked,
            discard_pool,
            get_pool,
            resolve_workers,
        )

        if not jobs:
            return []
        pool = get_pool(backend, max_workers)
        size = chunk_size_for(len(jobs), resolve_workers(max_workers), chunk_size)
        indexed = list(zip(range(len(jobs)), jobs, job_seeds))
        futures = [
            pool.submit(_compile_chunk, self, baseline, chunk)
            for chunk in chunked(indexed, size)
        ]
        results: list = [None] * len(jobs)
        try:
            for future in futures:
                for index, result in future.result():
                    results[index] = result
        except BaseException:
            # Fail fast and retire the poisoned pool: queued chunks are
            # cancelled so the error surfaces now, and the next batch gets
            # a fresh executor (see repro.experiments.pool.discard_pool).
            for future in futures:
                future.cancel()
            discard_pool(pool)
            raise
        return results

    def _compile_sharded(
        self,
        jobs: list[Circuit],
        job_seeds: list[int | None],
        baseline: bool,
        shards: int,
    ) -> list:
        """Partition the batch round-robin into subprocess shards.

        Each shard compiles its slice serially against its own
        :class:`~repro.pipeline.cache.ShardDiskCache` view of the
        pipeline's disk store (reads fall through to the shared base,
        writes land in a private delta merged back on completion) — the
        same directory-pair wire format the experiments-layer
        ``ShardedRunner`` uses, applied to a raw circuit batch.  Results
        come back in input order, byte-identical for any shard count.
        """
        from repro.pipeline.cache import DiskCache, ShardDiskCache, shard_scratch

        if self.cache is not None and not isinstance(self.cache, DiskCache):
            # Same guard as the experiments-layer ShardedRunner: a
            # per-process cache snapshot cannot exchange artifacts, and
            # silently degrading would look like a cache that never warms.
            raise CompilationError(
                "the sharded backend exchanges artifacts through DiskCache "
                "directories; use a disk cache or none at all"
            )
        base = self.cache
        members: dict[int, list[tuple[int, Circuit, int | None]]] = {}
        for index, (circuit, seed) in enumerate(zip(jobs, job_seeds)):
            members.setdefault(index % shards, []).append((index, circuit, seed))
        from repro.experiments.pool import discard_pool, get_pool

        results: list = [None] * len(jobs)
        with shard_scratch(base, prefix="batch-") as delta_for:
            pool = get_pool("process", min(shards, len(members) or 1))
            futures = {}
            try:
                for shard, items in sorted(members.items()):
                    delta = delta_for(shard)
                    worker = self
                    if delta is not None:
                        worker = self.with_cache(
                            ShardDiskCache(delta, base=base.directory),
                            self.cache_only,
                        )
                    futures[
                        pool.submit(_compile_shard, worker, baseline, items)
                    ] = delta
                for future in as_completed(futures):
                    delta = futures[future]
                    pairs, stats = future.result()
                    if base is not None and delta is not None:
                        base.merge_from(delta)
                    if base is not None and stats is not None:
                        # Shard caches count in their own process; without
                        # this fold the coordinator's session totals would
                        # read zero after a fully-cached sharded batch.
                        with base._lock:
                            base.hits += stats.get("hits", 0)
                            base.misses += stats.get("misses", 0)
                    for index, result in pairs:
                        results[index] = result
            except BaseException:
                # Fail fast: cancel the shards still queued and retire the
                # pool so the failure surfaces immediately.
                for future in futures:
                    future.cancel()
                discard_pool(pool)
                raise
        return results
