"""Composable compiler-pass pipeline (see ARCHITECTURE.md).

The Fig. 2 flow — circuit -> MBQC pattern -> offline FlexLattice mapping ->
online reshaping — expressed as first-class passes over a shared
:class:`PassContext`, chained by a :class:`Pipeline` that also provides the
batch entry point (``compile_many``) every sweep driver uses.
"""

from repro.pipeline.cache import (
    ArtifactCache,
    CachePass,
    DiskCache,
    MemoryCache,
    ShardDiskCache,
    cache_summary,
    cached_passes,
    circuit_fingerprint,
    make_cache,
    uncached_passes,
)
from repro.pipeline.context import PassContext, PassTiming
from repro.pipeline.passes import (
    BaselinePass,
    CompilerPass,
    LowerIRPass,
    OfflineMapPass,
    OnlineReshapePass,
    TranslatePass,
)
from repro.pipeline.pipeline import (
    PassInsertionError,
    Pipeline,
    baseline_passes,
    check_chain,
    default_passes,
)
from repro.pipeline.result import CompilationResult
from repro.pipeline.settings import PipelineSettings, rsl_size_for, virtual_size_for

__all__ = [
    "ArtifactCache",
    "BaselinePass",
    "CachePass",
    "CompilationResult",
    "CompilerPass",
    "DiskCache",
    "MemoryCache",
    "LowerIRPass",
    "OfflineMapPass",
    "OnlineReshapePass",
    "PassContext",
    "PassInsertionError",
    "PassTiming",
    "Pipeline",
    "PipelineSettings",
    "ShardDiskCache",
    "TranslatePass",
    "baseline_passes",
    "cache_summary",
    "cached_passes",
    "check_chain",
    "circuit_fingerprint",
    "default_passes",
    "make_cache",
    "uncached_passes",
    "rsl_size_for",
    "virtual_size_for",
]
