"""Composable compiler-pass pipeline (see ARCHITECTURE.md).

The Fig. 2 flow — circuit -> MBQC pattern -> offline FlexLattice mapping ->
online reshaping — expressed as first-class passes over a shared
:class:`PassContext`, chained by a :class:`Pipeline` that also provides the
batch entry point (``compile_many``) every sweep driver uses.
"""

from repro.pipeline.context import PassContext, PassTiming
from repro.pipeline.passes import (
    BaselinePass,
    CompilerPass,
    LowerIRPass,
    OfflineMapPass,
    OnlineReshapePass,
    TranslatePass,
)
from repro.pipeline.pipeline import Pipeline, baseline_passes, default_passes
from repro.pipeline.result import CompilationResult
from repro.pipeline.settings import PipelineSettings, rsl_size_for, virtual_size_for

__all__ = [
    "BaselinePass",
    "CompilationResult",
    "CompilerPass",
    "LowerIRPass",
    "OfflineMapPass",
    "OnlineReshapePass",
    "PassContext",
    "PassTiming",
    "Pipeline",
    "PipelineSettings",
    "TranslatePass",
    "baseline_passes",
    "default_passes",
    "rsl_size_for",
    "virtual_size_for",
]
