"""OnePerc reproduction: a randomness-aware compiler for photonic MBQC.

This package reimplements the full system of *OnePerc: A Randomness-aware
Compiler for Photonic Quantum Computing* (ASPLOS 2024): the graph-state and
stabilizer substrates, the photonic hardware model, the online percolation /
renormalization passes, the FlexLattice IR with its instruction set, the
offline mapping pass, and the OneQ repeat-until-success baseline.

Quickstart::

    from repro import OnePercCompiler, benchmarks

    circuit = benchmarks.qaoa(num_qubits=4, seed=1)
    result = OnePercCompiler(fusion_success_rate=0.75).compile(circuit)
    print(result.rsl_count, result.fusion_count)
"""

from repro.errors import (
    BaselineExploded,
    CompilationError,
    GraphStateError,
    HardwareError,
    IRError,
    MappingError,
    MemoryBudgetExceeded,
    ReproError,
)
from repro.graphstate import GraphState, ResourceStateSpec
from repro.analysis import Summary, bootstrap_mean, monotone_fraction
from repro.compiler import OnePercCompiler
from repro.pipeline import Pipeline, PipelineSettings

__all__ = [
    "OnePercCompiler",
    "Pipeline",
    "PipelineSettings",
    "ReproError",
    "GraphStateError",
    "HardwareError",
    "IRError",
    "MappingError",
    "MemoryBudgetExceeded",
    "CompilationError",
    "BaselineExploded",
    "GraphState",
    "ResourceStateSpec",
    "Summary",
    "bootstrap_mean",
    "monotone_fraction",
    "__version__",
]

__version__ = "1.0.0"
