"""OneQ baseline: deterministic planner + repeat-until-success executor."""

from repro.baseline.oneq import OneQLayerPlan, OneQPlan, plan_oneq, plan_width_for
from repro.baseline.dynamic_retry import (
    DynamicBuildResult,
    build_with_dynamic_retry,
    chain_edges,
    triangle_edges,
)
from repro.baseline.retry import (
    DEFAULT_RSL_CAP,
    BaselineResult,
    RepeatUntilSuccessExecutor,
    expected_rsl,
)

__all__ = [
    "OneQPlan",
    "OneQLayerPlan",
    "plan_oneq",
    "plan_width_for",
    "RepeatUntilSuccessExecutor",
    "BaselineResult",
    "DEFAULT_RSL_CAP",
    "expected_rsl",
    "DynamicBuildResult",
    "build_with_dynamic_retry",
    "chain_edges",
    "triangle_edges",
]
