"""The motivating example's *dynamic retry* strategy (Section 3.1, Fig. 5).

Before OnePerc, the obvious fix to OneQ's fusion-failure blindness is to
retry each failed fusion in real time with another pair of qubits.  The
paper's Fig. 5 shows why this fails to scale:

* fusions must run *sequentially* (each retry depends on the previous
  heralded outcome), stalling the RSL pipeline;
* retries burn the leaves of the very sites being connected, so a run of
  bad luck leaves a site with no fusable neighbours — a **fatal failure**
  (Fig. 5(f)/(g)) that forces restarting the whole construction.

This module implements that strategy faithfully on real graph states so the
failure mode can be measured: the expected number of restarts grows with the
target structure's size, while OnePerc's percolation approach does not care.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError
from repro.graphstate.fusion import apply_fusion
from repro.graphstate.graph import GraphState
from repro.graphstate.resource import ResourceStateSpec, emit_star
from repro.hardware.fusion import FusionDevice
from repro.utils.rng import ensure_rng


@dataclass
class DynamicBuildResult:
    """Outcome of building one target structure with dynamic retries."""

    success: bool
    rsls_consumed: int
    fusions_attempted: int
    sequential_steps: int  # longest dependent fusion chain (time proxy)
    fatal_failures: int


def _build_once(
    target_edges: list[tuple[int, int]],
    num_sites: int,
    spec: ResourceStateSpec,
    device: FusionDevice,
) -> tuple[bool, int, int]:
    """One attempt: fuse leaf pairs per target edge, retrying on leftovers.

    Returns (success, fusions attempted, sequential steps).  A fatal failure
    is any edge whose endpoints ran out of leaves.
    """
    graph = GraphState()
    stars = [emit_star(graph, spec, ("site", index)) for index in range(num_sites)]
    leaves = [list(star.leaves) for star in stars]
    fusions = 0
    steps = 0
    for a, b in target_edges:
        connected = False
        while leaves[a] and leaves[b]:
            leaf_a = leaves[a].pop()
            leaf_b = leaves[b].pop()
            fusions += 1
            steps += 1  # every retry is causally after the previous outcome
            success = device.attempt("leaf-leaf")
            apply_fusion(graph, leaf_a, leaf_b, success)
            if success:
                connected = True
                break
        if not connected:
            return False, fusions, steps  # fatal: an endpoint is exhausted
    # Sanity: the roots must now realize the target structure.
    for a, b in target_edges:
        if not graph.has_edge(stars[a].root, stars[b].root):
            raise HardwareError("dynamic build bookkeeping diverged from the state")
    return True, fusions, steps


def build_with_dynamic_retry(
    target_edges: list[tuple[int, int]],
    resource_state_size: int = 4,
    fusion_success_rate: float = 0.75,
    rng=None,
    max_restarts: int = 10_000,
) -> DynamicBuildResult:
    """Repeat whole-structure attempts until one lands fusion-clean.

    Each restart consumes a fresh RSL (the destroyed photons cannot be
    reused).  ``target_edges`` is the program graph over site indices; sites
    are assumed adjacent on the layer (the Fig. 5 setting).
    """
    if not target_edges:
        raise HardwareError("the target structure needs at least one edge")
    num_sites = 1 + max(max(edge) for edge in target_edges)
    spec = ResourceStateSpec(resource_state_size)
    device = FusionDevice(fusion_success_rate, ensure_rng(rng))
    total_fusions = 0
    total_steps = 0
    for attempt in range(1, max_restarts + 1):
        success, fusions, steps = _build_once(target_edges, num_sites, spec, device)
        total_fusions += fusions
        total_steps += steps
        if success:
            return DynamicBuildResult(
                success=True,
                rsls_consumed=attempt,
                fusions_attempted=total_fusions,
                sequential_steps=total_steps,
                fatal_failures=attempt - 1,
            )
    return DynamicBuildResult(
        success=False,
        rsls_consumed=max_restarts,
        fusions_attempted=total_fusions,
        sequential_steps=total_steps,
        fatal_failures=max_restarts,
    )


def chain_edges(length: int) -> list[tuple[int, int]]:
    """A linear target structure of ``length`` edges."""
    if length < 1:
        raise HardwareError("chain needs >= 1 edge")
    return [(index, index + 1) for index in range(length)]


def triangle_edges() -> list[tuple[int, int]]:
    """Fig. 5(a)'s triangle ABC (plus nothing): the motivating target."""
    return [(0, 1), (1, 2), (2, 0)]
