"""The OneQ baseline planner (ISCA'23), as used in the paper's evaluation.

OneQ compiles the program graph state directly onto the resource-state
lattice, assuming every fusion succeeds: each program/ancilla qubit occupies
a resource state, spatial edges are leaf-leaf fusions between neighbours on
the same RSL, and temporal edges are inter-RSL fusions.  The plan is produced
by the same embedding machinery as OnePerc's offline pass but with OneQ's
*static partition* scheduling and no occupancy reserve — the two §6.2
optimizations OnePerc adds on top of OneQ (the third, refresh, has no OneQ
counterpart).

The planner's output is consumed by
:class:`~repro.baseline.retry.RepeatUntilSuccessExecutor`, which adds the
retry semantics of Section 7.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MappingError
from repro.hardware.architecture import HardwareConfig
from repro.mbqc.pattern import MeasurementPattern
from repro.offline.mapper import OfflineMapper

#: Lattice sites OneQ reserves per mapped qubit for fusion routing: the plan
#: grid is the RSL downsampled by this factor.
SITE_SPACING = 3

#: Plan grids beyond this width only add planning time, not fidelity: OneQ's
#: per-layer parallelism is already far beyond what retries can sustain.
MAX_PLAN_WIDTH = 12


@dataclass(frozen=True)
class OneQLayerPlan:
    """Deterministic fusion counts for one RSL of the OneQ plan."""

    intra_fusions: int  # leaf-leaf fusions within the RSL
    inter_fusions: int  # fusions binding this RSL to its predecessors


@dataclass
class OneQPlan:
    """The full OneQ compilation output (fusion pattern, no randomness)."""

    layers: list[OneQLayerPlan]
    plan_width: int
    node_count: int

    @property
    def depth(self) -> int:
        return len(self.layers)

    @property
    def total_fusions(self) -> int:
        return sum(layer.intra_fusions + layer.inter_fusions for layer in self.layers)


def plan_width_for(config: HardwareConfig) -> int:
    """The OneQ embedding grid width for a given RSL size."""
    return max(2, min(MAX_PLAN_WIDTH, config.rsl_size // SITE_SPACING))


def plan_oneq(
    pattern: MeasurementPattern,
    config: HardwareConfig,
) -> OneQPlan:
    """Produce the OneQ fusion plan for ``pattern`` on ``config``'s hardware.

    Raises :class:`MappingError` if the program cannot be embedded at all
    (independent of fusion randomness).
    """
    width = plan_width_for(config)
    mapper = OfflineMapper(
        width=width,
        occupancy_limit=1.0,  # OneQ reserves no routing headroom
        dynamic_scheduling=False,  # static partition
        max_idle_layers=16,
    )
    result = mapper.map_pattern(pattern)

    # Count fusions per layer off the produced embedding: one leaf-leaf
    # fusion per spatial edge, one inter-RSL fusion per temporal edge, and
    # (merge - 1) root-leaf fusions to assemble each occupied site's star.
    merge_fusions_per_site = config.merged_rsls_per_layer - 1
    spatial_by_layer = [0] * result.layer_count
    nodes_by_layer = [0] * result.layer_count
    inter_by_layer = [0] * result.layer_count
    for key in result.ir.spatial_edges:
        a, _b = tuple(key)
        spatial_by_layer[a[2]] += 1
    for coord in result.ir.nodes:
        nodes_by_layer[coord[2]] += 1
    for _earlier, later in result.ir.temporal_edges():
        inter_by_layer[later[2]] += 1

    layers = [
        OneQLayerPlan(
            intra_fusions=spatial_by_layer[layer]
            + merge_fusions_per_site * nodes_by_layer[layer],
            inter_fusions=inter_by_layer[layer],
        )
        for layer in range(result.layer_count)
    ]
    if not layers:
        raise MappingError("OneQ produced an empty plan")
    return OneQPlan(layers=layers, plan_width=width, node_count=len(result.ir.nodes))
