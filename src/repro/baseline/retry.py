"""Repeat-until-success execution of a OneQ plan (Section 7.1).

"Since OneQ is not able to handle fusion failures, we employ it with a
repeat-until-success strategy.  Specifically, for each RSL we conduct the
fusions instructed by OneQ repeatedly until all fusions are successful.
Subsequently, the successful RSL is fused with its preceding RSLs.  If
failures occur in the inter-RSL fusions, the entire compilation is restarted
and repeated until success."  The evaluation caps consumption at 10^6 RSLs
(the ``> 10^6`` rows of Table 2).

Each per-RSL retry consumes a fresh RSL (the destroyed photons cannot be
reused); retries are sampled geometrically from the all-fusions-succeed
probability ``p^f``, which is exact and keeps exploding runs cheap to
simulate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.baseline.oneq import OneQPlan
from repro.errors import BaselineExploded
from repro.utils.rng import ensure_rng

#: The paper's evaluation cap on consumed resource state layers.
DEFAULT_RSL_CAP = 10**6


@dataclass
class BaselineResult:
    """OneQ's consumption for one program (Table 2's left columns)."""

    rsl_count: int
    fusion_count: int
    restarts: int
    capped: bool = False
    #: Pipeline ``PassContext.metrics`` provenance (cache hit/miss counts,
    #: ...), attached by ``Pipeline.compile_baseline`` after the run.
    metrics: dict = field(default_factory=dict, compare=False, repr=False)
    #: Telemetry spans from the compilation (out-of-band; attached by
    #: ``Pipeline.compile_baseline`` when tracing, else empty).
    spans: list = field(default_factory=list, compare=False, repr=False)


def _geometric(rng, success_probability: float, cap: int) -> int:
    """Trials until first success, truncated at ``cap``."""
    if success_probability <= 0.0:
        return cap
    if success_probability >= 1.0:
        return 1
    draw = int(rng.geometric(success_probability))
    return min(draw, cap)


class RepeatUntilSuccessExecutor:
    """Monte-Carlo execution of a OneQ plan under fusion failures."""

    def __init__(
        self,
        fusion_success_rate: float,
        rsl_cap: int = DEFAULT_RSL_CAP,
        rng=None,
    ) -> None:
        if not 0.0 < fusion_success_rate <= 1.0:
            raise ValueError(
                f"fusion success rate must be in (0, 1], got {fusion_success_rate}"
            )
        self.p = fusion_success_rate
        self.rsl_cap = rsl_cap
        self.rng = ensure_rng(rng)

    def run(self, plan: OneQPlan, raise_on_cap: bool = False) -> BaselineResult:
        """Execute until the whole plan lands fusion-clean, or the cap hits.

        With ``raise_on_cap`` a capped run raises :class:`BaselineExploded`
        (matching the artifact's forced termination); otherwise the capped
        totals are returned with ``capped=True`` for the Table 2 rows.
        """
        rsl_total = 0
        fusion_total = 0
        restarts = 0
        while True:
            completed = True
            for layer in plan.layers:
                layer_success = self.p**layer.intra_fusions  # may underflow to 0
                headroom = self.rsl_cap - rsl_total
                if headroom <= 0:
                    return self._capped(rsl_total, fusion_total, restarts, raise_on_cap)
                tries = _geometric(self.rng, layer_success, headroom)
                rsl_total += tries
                fusion_total += tries * layer.intra_fusions
                if rsl_total >= self.rsl_cap:
                    return self._capped(rsl_total, fusion_total, restarts, raise_on_cap)
                # Inter-RSL fusions bind the fresh layer to its predecessors.
                fusion_total += layer.inter_fusions
                if layer.inter_fusions and (
                    self.rng.random() >= self.p**layer.inter_fusions
                ):
                    restarts += 1
                    completed = False
                    break
            if completed:
                return BaselineResult(
                    rsl_count=rsl_total,
                    fusion_count=fusion_total,
                    restarts=restarts,
                )

    def _capped(
        self, rsl_total: int, fusion_total: int, restarts: int, raise_on_cap: bool
    ) -> BaselineResult:
        if raise_on_cap:
            raise BaselineExploded(self.rsl_cap, rsl_total, fusion_total)
        return BaselineResult(
            rsl_count=max(rsl_total, self.rsl_cap),
            fusion_count=fusion_total,
            restarts=restarts,
            capped=True,
        )


def expected_rsl(plan: OneQPlan, fusion_success_rate: float) -> float:
    """Closed-form expectation of OneQ's #RSL (sanity oracle for tests).

    Per full pass, the expected RSLs are ``sum_l p^{-f_l}``; a pass survives
    with probability ``prod_l p^{g_l}``, so the expected number of passes is
    its reciprocal.  (Slight overcount: the aborted pass is cheaper than a
    full one; the Monte-Carlo executor is the reference.)
    """
    p = fusion_success_rate
    per_pass = 0.0
    survive = 1.0
    for layer in plan.layers:
        per_pass += p ** (-min(layer.intra_fusions, 700))
        survive *= p ** layer.inter_fusions
    if survive <= 0.0 or per_pass == math.inf:
        return math.inf
    return per_pass / survive
